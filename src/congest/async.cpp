#include "congest/async.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <queue>
#include <unordered_map>

#include "congest/node_state.hpp"
#include "obs/metrics_v2.hpp"
#include "support/check.hpp"

namespace csd::congest {

namespace {

/// One wire-level occurrence: a data packet or ack arriving, a
/// retransmission timer firing at the sender, or a crashed node rejoining.
struct Event {
  enum class Kind : std::uint8_t { Data, Ack, Timer, Recover };

  std::uint64_t time = 0;
  std::uint64_t seq = 0;  // FIFO/determinism tiebreak
  Kind kind = Kind::Data;
  // Directed link the event belongs to, sender side: (src, src_port).
  std::uint32_t src = 0;
  std::uint32_t src_port = 0;
  // Receiver side (valid for Data; for Ack it is the original data sender).
  std::uint32_t dst = 0;
  std::uint32_t dst_port = 0;
  std::uint64_t link_seq = 0;  // transport sequence number (Ack/Timer/Data)
  DataPacket packet;           // Data only (raw mode leaves seq/crc zero)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

/// Synchronizer bookkeeping per node.
struct SyncState {
  std::uint64_t pulse = 0;          // next pulse to execute
  std::uint64_t local_time = 0;     // virtual time the node last acted
  std::vector<std::deque<Frame>> arrived;  // per port
  std::vector<bool> port_dead;             // sender halted, nothing more
  bool running = true;   // false once halted, crashed, or cap-stopped
  bool crashed = false;  // fault-injected or program fault
  bool crash_done = false;        // scheduled crash already honored
  bool recovery_pending = false;  // a Recover event is in the queue
  std::uint32_t recoveries_used = 0;
};

class AsyncEngine {
 public:
  AsyncEngine(const Graph& topology, const AsyncConfig& config,
              std::vector<NodeId> ids, const ProgramFactory& factory)
      : topology_(topology),
        config_(config),
        reliable_(config.transport == TransportMode::Reliable),
        ids_(std::move(ids)),
        factory_(&factory),
        delay_rng_(derive_seed(config.seed, 0xde1a)) {
    const Vertex n = topology_.num_vertices();
    CSD_CHECK_MSG(ids_.size() == n, "identifier assignment size mismatch");
    CSD_CHECK(config_.max_delay >= 1);
    namespace_size_ = config_.namespace_size;
    if (namespace_size_ == 0) namespace_size_ = n;
    const std::uint64_t namespace_size = namespace_size_;
    for (const NodeId id : ids_)
      CSD_CHECK_MSG(id < namespace_size, "identifier outside namespace");

    if (!config_.faults.empty())
      injector_.emplace(config_.faults, config_.seed, topology_);
    base_rto_ = config_.transport_cfg.rto != 0
                    ? config_.transport_cfg.rto
                    : 2ULL * config_.max_delay + 4;
    rejoin_delay_ = config_.recovery.rejoin_delay != 0
                        ? config_.recovery.rejoin_delay
                        : 4 * base_rto_;
    // Inbox logging powers both node recovery and checkpoint capture; it
    // copies delivered payloads and never consumes randomness, so enabling
    // it cannot change a single bit of the run (fuzzer-enforced).
    log_enabled_ =
        config_.recovery.enabled || config_.checkpoint_at_pulse != 0;
    if (log_enabled_) inbox_log_.resize(n);

    // Reverse-port table in O(sum deg) expected time via per-vertex port
    // maps (mirrors Network::build_topology_tables; the old per-neighbor
    // std::find scan was O(sum deg^2)). Stored flat over the CSR's dense
    // directed-edge index e = offsets[v] + port.
    csr_ = &topology_.csr();
    std::vector<std::unordered_map<Vertex, std::uint32_t>> port_of(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = csr_->row(v);
      port_of[v].reserve(nbrs.size());
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) port_of[v][nbrs[p]] = p;
    }
    rev_port_.resize(static_cast<std::size_t>(csr_->num_directed_edges()));
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = csr_->row(v);
      const std::uint64_t base = csr_->offsets[v];
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        const auto it = port_of[nbrs[p]].find(v);
        CSD_CHECK(it != port_of[nbrs[p]].end());
        rev_port_[base + p] = it->second;
      }
    }
    inbox_arena_ = detail::FrameArena(*csr_);
    outbox_arena_ = detail::FrameArena(*csr_);

    nodes_.reserve(n);
    programs_.reserve(n);
    sync_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      nodes_.push_back(std::make_unique<detail::NodeState>(
          topology_, v, ids_[v], config_.seed, n, namespace_size,
          config_.bandwidth, config_.broadcast_only,
          &outcome_.faults.violations));
      std::vector<NodeId> neighbor_ids;
      for (const Vertex w : topology_.neighbors(v))
        neighbor_ids.push_back(ids_[w]);
      nodes_.back()->set_neighbor_ids(std::move(neighbor_ids));
      nodes_.back()->attach_frames(
          inbox_arena_.payload_row(v), inbox_arena_.present_row(v),
          outbox_arena_.payload_row(v), outbox_arena_.present_row(v));
      programs_.push_back(factory(v));
      CSD_CHECK(programs_.back() != nullptr);
      sync_[v].arrived.resize(topology_.degree(v));
      sync_[v].port_dead.assign(topology_.degree(v), false);
    }
    outcome_.trace = obs::RunTrace(n, config_.trace);
    if (outcome_.trace)
      for (Vertex v = 0; v < n; ++v) nodes_[v]->set_trace(&outcome_.trace);
    timing_ = config_.trace.timers;
    outcome_.timers.enabled = timing_;
    // FIFO watermark per directed link (indexed by src, src-port); acks on
    // the reverse link share its watermark with that link's data frames.
    link_watermark_.resize(n);
    for (Vertex v = 0; v < n; ++v)
      link_watermark_[v].assign(topology_.degree(v), 0);
    if (reliable_) {
      senders_.reserve(n);
      receivers_.reserve(n);
      for (Vertex v = 0; v < n; ++v) {
        senders_.emplace_back(topology_.degree(v),
                              LinkSender(config_.transport_cfg));
        receivers_.emplace_back(topology_.degree(v),
                                LinkReceiver(config.transport_cfg));
      }
    }

    // csd-metrics-v2 instrumentation: handles registered once, write-only
    // afterwards. nullptr telemetry leaves every site a predicted branch.
    telemetry_ = config_.telemetry;
    if (telemetry_ != nullptr) {
      m_pulses_ = telemetry_->counter("async_pulses");
      m_frames_ = telemetry_->counter("async_frames");
      m_retransmits_ = telemetry_->counter("async_retransmissions");
      m_crc_rejects_ = telemetry_->counter("async_checksum_rejects");
      m_drops_ = telemetry_->counter("async_frames_dropped");
      m_corrupts_ = telemetry_->counter("async_frames_corrupted");
      m_crashes_ = telemetry_->counter("async_node_crashes");
      m_recoveries_ = telemetry_->counter("async_node_recoveries");
      m_queue_depth_ = telemetry_->gauge("async_event_queue");
      m_payload_hist_ = telemetry_->histogram("async_frame_payload_bits");
    }
  }

  AsyncRunOutcome run() {
    bootstrap();
    event_loop();
    return finalize();
  }

  AsyncRunOutcome resume(const Snapshot& snapshot) {
    restore(snapshot);
    // A terminal snapshot froze a run that had already ended; its queued
    // events are dead letters, so finalize the restored state directly.
    if (snapshot.async_state.terminal == 0) event_loop();
    return finalize();
  }

 private:
  void bootstrap() {
    // Pulse 0 runs immediately everywhere (empty inbox); degree-0 nodes
    // are always ready, so drive them to completion here — no event will
    // ever re-trigger them. Timing: program execution is measured inside
    // execute_pulse (compute_ns); the remainder of this loop — frame
    // assembly and event scheduling — is synchronizer work (delivery_ns).
    const auto started = timing_ ? Clock::now() : Clock::time_point{};
    const std::uint64_t compute_before = outcome_.timers.compute_ns;
    for (Vertex v = 0; v < topology_.num_vertices(); ++v) {
      execute_pulse(v);
      while (try_execute(v)) {
      }
    }
    if (timing_)
      add_delivery_time(started, compute_before, /*transport=*/false);
  }

  void event_loop() {
    while (!events_.empty()) {
      if (config_.checkpoint_at_pulse != 0 && outcome_.checkpoint == nullptr &&
          outcome_.pulses >= config_.checkpoint_at_pulse)
        capture_checkpoint();
      const Event event = events_.top();
      if (config_.stall_window != 0 &&
          event.time > last_progress_vt_ + config_.stall_window * base_rto_) {
        // No delivery or recovery for stall_window RTOs of virtual time:
        // cut the run instead of grinding through a dead event queue.
        outcome_.faults.watchdog_stalls = 1;
        if (telemetry_ != nullptr)
          telemetry_->record(obs::EventKind::WatchdogStall, 0, event.time,
                             event.time - last_progress_vt_);
        break;
      }
      events_.pop();
      // Per-event timing: nested program execution is subtracted (it books
      // itself into compute_ns); the remainder is synchronizer/delivery
      // work for Data events and reliable-transport work for Ack/Timer.
      const auto started = timing_ ? Clock::now() : Clock::time_point{};
      const std::uint64_t compute_before = outcome_.timers.compute_ns;
      switch (event.kind) {
        case Event::Kind::Data:
          outcome_.virtual_time = std::max(outcome_.virtual_time, event.time);
          last_progress_vt_ = std::max(last_progress_vt_, event.time);
          deliver_data(event);
          // Cascade: the delivery may have unblocked the destination.
          while (try_execute(event.dst)) {
          }
          break;
        case Event::Kind::Ack:
          outcome_.virtual_time = std::max(outcome_.virtual_time, event.time);
          // A permanently crashed host's transport dies with it, but a
          // host with a pending recovery keeps its ARQ card: acks that
          // arrive while it is down still settle its in-flight packets.
          if ((!sync_[event.src].crashed ||
               sync_[event.src].recovery_pending) &&
              !senders_[event.src][event.src_port].on_ack(event.link_seq))
            ++outcome_.faults.duplicate_acks;
          break;
        case Event::Kind::Timer:
          handle_timer(event);
          break;
        case Event::Kind::Recover:
          last_progress_vt_ = std::max(last_progress_vt_, event.time);
          handle_recover(event);
          // A node that died at pulse 0 replayed an empty history; pulse 0
          // needs the same unconditional kick the bootstrap gives (ports
          // cannot be "ready" for it — there is no pulse -1 frame to wait
          // on). Later pulses cascade normally off the queued arrivals.
          if (sync_[event.src].pulse == 0 && sync_[event.src].running)
            execute_pulse(event.src);
          while (try_execute(event.src)) {
          }
          break;
      }
      if (timing_)
        add_delivery_time(started, compute_before,
                          event.kind == Event::Kind::Ack ||
                              event.kind == Event::Kind::Timer);
      if (stopped_count_ == topology_.num_vertices() &&
          pending_recoveries_ == 0)
        break;
      if (pulse_cap_hit_) break;
    }
    // The capture pulse may have been crossed inside the final event's
    // cascade (or right before a break above), after the loop-top check
    // last ran. Capture the end state rather than silently skipping — but
    // mark it terminal: any events still queued were abandoned by this run
    // (pulse cap, all-stopped, watchdog) and a resume must abandon them
    // too, not replay them.
    if (config_.checkpoint_at_pulse != 0 && outcome_.checkpoint == nullptr &&
        outcome_.pulses >= config_.checkpoint_at_pulse)
      capture_checkpoint(/*terminal=*/true);
  }

  AsyncRunOutcome finalize() {
    const Vertex n = topology_.num_vertices();
    outcome_.completed = halted_count_ == n;
    outcome_.verdicts.reserve(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto& node = nodes_[v];
      outcome_.verdicts.push_back(node->verdict());
      if (node->verdict() == Verdict::Reject) outcome_.detected = true;
      if (!sync_[v].crashed && node->verdict() == Verdict::Reject)
        outcome_.faults.detected_by_survivors = true;
      if (!sync_[v].crashed && !node->halted())
        outcome_.faults.stalled_nodes.push_back(v);
    }
    outcome_.counters = fault_counters(outcome_.faults);
    if (outcome_.trace) {
      // Pad quiet trailing pulses so the trace covers exactly
      // outcome_.pulses rounds — mirroring the synchronous engine, which
      // keeps fault-free traces byte-identical across the two.
      outcome_.trace.finish_run(outcome_.pulses);
      outcome_.trace.set_counters(outcome_.counters);
    }
    outcome_.trace_bytes = outcome_.trace.approx_bytes();
    return outcome_;
  }

 private:
  // ------------------------------------------------------------- timing --
  using Clock = std::chrono::steady_clock;

  static std::uint64_t elapsed_ns(Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  }

  /// Book the time since `started`, minus the program-compute time nested
  /// inside it (already self-booked into compute_ns), as delivery or
  /// transport work.
  void add_delivery_time(Clock::time_point started,
                         std::uint64_t compute_before, bool transport) {
    const std::uint64_t total = elapsed_ns(started);
    const std::uint64_t nested = outcome_.timers.compute_ns - compute_before;
    const std::uint64_t rest = total > nested ? total - nested : 0;
    if (transport)
      outcome_.timers.transport_ns += rest;
    else
      outcome_.timers.delivery_ns += rest;
  }

  // ----------------------------------------------------------- wire layer --
  std::uint64_t fresh_delay() {
    return 1 + delay_rng_.below(config_.max_delay);
  }

  void push_event(Event event) {
    event.seq = next_event_seq_++;
    events_.push(std::move(event));
  }

  /// Apply link faults to a packet about to go on the wire. Returns false
  /// if the transmission is dropped; flips one bit on corruption. With
  /// FaultPlan::corrupt_headers the flipped bit is drawn over the frame
  /// header (pulse, then halted flag) as well as the payload; otherwise it
  /// targets the payload alone, so existing fault streams are unchanged.
  bool survive_faults(std::uint32_t src, std::uint32_t port,
                      DataPacket& packet) {
    if (!injector_.has_value()) return true;
    const std::uint64_t payload_bits = packet.frame.payload_bits();
    const std::uint64_t header_bits =
        config_.faults.corrupt_headers ? Frame::kPulseWireBits + 1 : 0;
    const auto fate = injector_->next_fate(
        src, port, static_cast<std::size_t>(header_bits + payload_bits));
    if (fate.dropped) {
      ++outcome_.faults.frames_dropped;
      if (telemetry_ != nullptr) {
        m_drops_.add();
        telemetry_->record(obs::EventKind::FrameDropped, src,
                           packet.frame.pulse);
      }
      return false;
    }
    if (fate.corrupted) {
      ++outcome_.faults.frames_corrupted;
      if (telemetry_ != nullptr) {
        m_corrupts_.add();
        telemetry_->record(obs::EventKind::FrameCorrupted, src,
                           packet.frame.pulse);
      }
      const std::uint64_t bit = fate.corrupt_bit;
      if (bit < header_bits) {
        if (bit < Frame::kPulseWireBits)
          packet.frame.pulse ^= 1ULL << bit;
        else
          packet.frame.sender_halted = !packet.frame.sender_halted;
      } else {
        packet.frame.payload->flip(
            static_cast<std::size_t>(bit - header_bits));
      }
    }
    return true;
  }

  /// Schedule the arrival of `packet` on the directed link (src, port) for
  /// a transmission happening at `now`. FIFO watermark per link.
  void transmit(std::uint32_t src, std::uint32_t port, DataPacket packet,
                std::uint64_t now) {
    if (!survive_faults(src, port, packet)) return;
    std::uint64_t when = now + fresh_delay();
    when = std::max(when, link_watermark_[src][port] + 1);
    link_watermark_[src][port] = when;
    Event event;
    event.time = when;
    event.kind = Event::Kind::Data;
    event.src = src;
    event.src_port = port;
    event.dst = csr_->row(src)[port];
    event.dst_port = rev_port_[csr_->offsets[src] + port];
    event.link_seq = packet.seq;
    event.packet = std::move(packet);
    push_event(std::move(event));
  }

  void arm_timer(std::uint32_t src, std::uint32_t port, std::uint64_t seq,
                 std::uint64_t now) {
    Event event;
    event.time = now + senders_[src][port].timeout_for(seq, base_rto_);
    event.kind = Event::Kind::Timer;
    event.src = src;
    event.src_port = port;
    event.link_seq = seq;
    push_event(std::move(event));
  }

  void send_ack(std::uint32_t dst, std::uint32_t dst_port, std::uint64_t seq,
                std::uint64_t now, std::uint32_t data_src,
                std::uint32_t data_src_port) {
    ++outcome_.acks;
    outcome_.transport_bits +=
        config_.transport_cfg.seq_bits + config_.transport_cfg.crc_bits;
    // The ack travels on the reverse directed link (dst, dst_port) and is
    // subject to the same drop process; it carries no payload, so the
    // corruption draw never fires (CRC-protected header abstracted away).
    if (injector_.has_value()) {
      const auto fate = injector_->next_fate(dst, dst_port, 0);
      if (fate.dropped) {
        ++outcome_.faults.frames_dropped;
        if (telemetry_ != nullptr) {
          m_drops_.add();
          telemetry_->record(obs::EventKind::FrameDropped, dst, now);
        }
        return;
      }
    }
    std::uint64_t when = now + fresh_delay();
    when = std::max(when, link_watermark_[dst][dst_port] + 1);
    link_watermark_[dst][dst_port] = when;
    Event event;
    event.time = when;
    event.kind = Event::Kind::Ack;
    event.src = data_src;  // the node whose sender awaits this ack
    event.src_port = data_src_port;
    event.link_seq = seq;
    push_event(std::move(event));
  }

  void deliver_data(const Event& event) {
    // A permanently dead host neither acks nor buffers: its packets fall
    // into the void and the senders' retry budgets eventually give up —
    // mirroring handle_timer, where a permanent crash kills the transport
    // too. A host with a *pending* recovery keeps receiving: its ARQ card
    // and arrival queues survive the outage, and the replica drains the
    // backlog after the rejoin.
    const auto& dst_sync = sync_[event.dst];
    if (dst_sync.crashed && !dst_sync.recovery_pending) return;
    if (reliable_) {
      auto accept = receivers_[event.dst][event.dst_port].on_data(event.packet);
      if (accept.checksum_reject) {
        ++outcome_.faults.checksum_rejects;
        if (telemetry_ != nullptr) {
          m_crc_rejects_.add();
          telemetry_->record(obs::EventKind::ChecksumReject, event.dst,
                             event.time);
        }
        return;
      }
      if (accept.send_ack)
        send_ack(event.dst, event.dst_port, accept.ack_seq, event.time,
                 event.src, event.src_port);
      if (accept.duplicate) {
        ++outcome_.faults.duplicate_packets;
        return;
      }
      for (Frame& frame : accept.deliver)
        deliver_frame(event.dst, event.dst_port, std::move(frame), event.time);
    } else {
      deliver_frame(event.dst, event.dst_port, Frame(event.packet.frame),
                    event.time);
    }
  }

  void deliver_frame(std::uint32_t dst, std::uint32_t port, Frame frame,
                     std::uint64_t time) {
    auto& sync = sync_[dst];
    if (frame.sender_halted) sync.port_dead[port] = true;  // after this frame
    sync.arrived[port].push_back(std::move(frame));
    sync.local_time = std::max(sync.local_time, time);
  }

  void handle_timer(const Event& event) {
    if (sync_[event.src].crashed) {
      if (sync_[event.src].recovery_pending) {
        // Timer parking: the host is down but scheduled to rejoin. Re-arm
        // the raw event one RTO out without consulting the sender (whose
        // attempt counter must not advance while the host is dead), so the
        // retransmission conversation resumes after the rejoin instead of
        // being abandoned.
        Event parked = event;
        parked.time = event.time + base_rto_;
        push_event(std::move(parked));
        return;
      }
      return;  // a permanent crash kills the transport too
    }
    auto& sender = senders_[event.src][event.src_port];
    switch (sender.on_timeout(event.link_seq)) {
      case LinkSender::TimeoutAction::Settled:
        return;
      case LinkSender::TimeoutAction::GiveUp:
        ++outcome_.faults.transport_failures;
        return;
      case LinkSender::TimeoutAction::Retransmit: {
        DataPacket packet = sender.retransmit_packet(event.link_seq);
        ++outcome_.faults.retransmissions;
        if (telemetry_ != nullptr) {
          m_retransmits_.add();
          telemetry_->record(obs::EventKind::Retransmit, event.src, event.time,
                             event.link_seq);
        }
        outcome_.transport_bits += packet.frame.overhead_bits() +
                                   config_.transport_cfg.seq_bits +
                                   packet.frame.payload_bits() +
                                   config_.transport_cfg.crc_bits;
        transmit(event.src, event.src_port, std::move(packet), event.time);
        arm_timer(event.src, event.src_port, event.link_seq, event.time);
        return;
      }
    }
  }

  // ---------------------------------------------------------- synchronizer --
  /// Frame for the pulse dst is waiting on available (or the port is
  /// permanently dead with no buffered frames: the sender halted earlier)?
  /// Under raw faulty links a dropped frame leaves a pulse gap at the head
  /// of the queue — the port is then starved forever and the node stalls.
  bool port_ready(const SyncState& sync, std::uint32_t port) const {
    const auto& queue = sync.arrived[port];
    if (!queue.empty()) return queue.front().pulse + 1 == sync.pulse;
    return sync.port_dead[port];
  }

  bool try_execute(Vertex v) {
    auto& sync = sync_[v];
    if (!sync.running) return false;
    for (std::uint32_t p = 0; p < sync.arrived.size(); ++p)
      if (!port_ready(sync, p)) return false;
    execute_pulse(v);
    return true;
  }

  /// `recoverable` is true only for *scheduled* crashes: a program fault is
  /// a deterministic function of a delivered payload, so a restored replica
  /// would re-crash on the same input — recovery never applies to it.
  void crash_node(Vertex v, bool recoverable) {
    auto& sync = sync_[v];
    sync.running = false;
    sync.crashed = true;
    nodes_[v]->discard_outbox();
    outcome_.faults.crashed_nodes.push_back(v);
    if (telemetry_ != nullptr) {
      m_crashes_.add();
      telemetry_->record(obs::EventKind::NodeCrash, v, sync.pulse);
    }
    ++stopped_count_;
    if (recoverable && config_.recovery.enabled &&
        sync.recoveries_used < config_.recovery.max_recoveries) {
      ++sync.recoveries_used;
      sync.recovery_pending = true;
      ++pending_recoveries_;
      Event event;
      event.time = sync.local_time + rejoin_delay_;
      event.kind = Event::Kind::Recover;
      event.src = v;
      push_event(std::move(event));
    }
  }

  void execute_pulse(Vertex v) {
    auto& sync = sync_[v];
    auto& node = *nodes_[v];
    CSD_CHECK(sync.running);
    // crash_done: a recovered node must not be re-killed by the same
    // schedule entry on every subsequent pulse (the entry means "crash when
    // the pulse counter first reaches `when`", not "stay dead forever").
    if (injector_.has_value() && !sync.crash_done) {
      if (const auto when = injector_->crash_round(v);
          when.has_value() && sync.pulse >= *when) {
        sync.crash_done = true;
        crash_node(v, /*recoverable=*/true);
        return;
      }
    }
    if (sync.pulse >= config_.max_pulses) {
      pulse_cap_hit_ = true;
      sync.running = false;
      return;
    }

    // Assemble the inbox for this pulse (pulse 0 has none by construction).
    node.clear_inbox();
    if (sync.pulse > 0) {
      for (std::uint32_t p = 0; p < sync.arrived.size(); ++p) {
        if (sync.arrived[p].empty()) continue;  // dead port
        Frame frame = std::move(sync.arrived[p].front());
        sync.arrived[p].pop_front();
        CSD_CHECK_MSG(frame.pulse + 1 == sync.pulse,
                      "synchronizer frame out of order");
        if (frame.payload.has_value()) {
          if (logging_active())
            log_row(v, sync.pulse)[p] = *frame.payload;  // post-corruption
          node.deliver(p, std::move(*frame.payload));
        }
      }
    }

    node.begin_round(sync.pulse);
    bool program_fault = false;
    const auto invoke_program = [&] {
      if (injector_.has_value()) {
        // Graceful degradation under fault injection: a program that throws
        // (typically a wire decode of a corrupted payload) becomes a crashed
        // node, not a crashed process. Without faults, fail fast.
        try {
          programs_[v]->on_round(node);
        } catch (const CheckFailure& failure) {
          outcome_.faults.violations.push_back(
              {ViolationKind::ProgramFault, v, sync.pulse, failure.what()});
          program_fault = true;
        }
      } else {
        programs_[v]->on_round(node);
      }
    };
    if (timing_) {
      const auto started = Clock::now();
      invoke_program();
      outcome_.timers.compute_ns += elapsed_ns(started);
    } else {
      invoke_program();
    }
    if (program_fault) {
      if (telemetry_ != nullptr)
        telemetry_->record(obs::EventKind::Violation, v, sync.pulse);
      crash_node(v, /*recoverable=*/false);
      return;
    }
    outcome_.pulses = std::max(outcome_.pulses, sync.pulse + 1);
    if (telemetry_ != nullptr) m_pulses_.add();

    // Emit this pulse's frames (exactly one per port), with jittered FIFO
    // delivery times; under the reliable transport each frame becomes a
    // sequenced, CRC-protected, retransmittable packet.
    const bool node_halted = node.halted();
    for (std::uint32_t p = 0; p < sync.arrived.size(); ++p) {
      Frame frame;
      frame.pulse = sync.pulse;
      frame.sender_halted = node_halted;
      if (node.outbox_present(p)) {
        // Move the payload buffer out of the arena slot into the frame; the
        // transport layer reads from the same buffer, no copy is made.
        frame.payload.emplace();
        std::swap(*frame.payload, node.outbox_payload(p));
        node.consume_outbox(p);
      }
      if (outcome_.trace && frame.payload.has_value())
        outcome_.trace.record(sync.pulse, v, topology_.neighbors(v)[p],
                              frame.payload_bits());
      outcome_.payload_bits += frame.payload_bits();
      outcome_.overhead_bits += frame.overhead_bits();
      ++outcome_.frames;
      if (telemetry_ != nullptr) {
        m_frames_.add();
        m_payload_hist_.observe(frame.payload_bits());
        m_queue_depth_.set(events_.size());
      }
      if (reliable_) {
        DataPacket packet = senders_[v][p].packet(std::move(frame));
        outcome_.transport_bits +=
            config_.transport_cfg.seq_bits + config_.transport_cfg.crc_bits;
        const std::uint64_t seq = packet.seq;
        transmit(v, p, std::move(packet), sync.local_time);
        arm_timer(v, p, seq, sync.local_time);
      } else {
        DataPacket packet;
        packet.frame = std::move(frame);
        transmit(v, p, std::move(packet), sync.local_time);
      }
    }

    ++sync.pulse;
    if (node_halted) {
      sync.running = false;
      ++halted_count_;
      ++stopped_count_;
    }
  }

  // ----------------------------------------------------- recovery/snapshot --
  /// Logging stays on while it can still be consumed: always under a
  /// recovery policy, and until the checkpoint is captured otherwise.
  bool logging_active() const {
    return log_enabled_ &&
           (config_.recovery.enabled || outcome_.checkpoint == nullptr);
  }

  std::vector<std::optional<BitVec>>& log_row(Vertex v, std::uint64_t r) {
    auto& entries = inbox_log_[v].entries;
    while (entries.size() <= r) entries.emplace_back(topology_.degree(v));
    return entries[r];
  }

  /// Replay pulses [0, pulses) of `log` through a fresh (node, program)
  /// pair: deliver the logged inbox, run the program, discard its sends.
  /// Programs are pure functions of (inbox history, seeded RNG draws), so
  /// this reconstructs internal state bit-exactly — the caller routes
  /// violations to a scratch sink and detaches the trace first, because
  /// everything observable was already reported when the history ran live.
  static void replay_history(detail::NodeState& node, NodeProgram& program,
                             const InboxLog& log, std::uint64_t pulses) {
    for (std::uint64_t r = 0; r < pulses; ++r) {
      node.clear_inbox();
      if (r < log.entries.size())
        for (std::uint32_t p = 0; p < log.entries[r].size(); ++p)
          if (log.entries[r][p].has_value())
            node.deliver(p, BitVec(*log.entries[r][p]));
      node.begin_round(r);
      program.on_round(node);
    }
    node.discard_outbox();
  }

  void handle_recover(const Event& event) {
    const Vertex v = event.src;
    auto& sync = sync_[v];
    CSD_CHECK(sync.crashed && sync.recovery_pending);
    sync.recovery_pending = false;
    --pending_recoveries_;
    // The rejoined host lost its memory: build a fresh replica and replay
    // its logged inbox history — the in-engine model of "restart the host,
    // restore its checkpoint". Frames that arrived while it was down are
    // still queued in sync.arrived (delivery never checks the destination's
    // crash flag), so the node picks up exactly where it died.
    std::vector<ProtocolViolation> scratch;
    auto node = std::make_unique<detail::NodeState>(
        topology_, v, ids_[v], config_.seed, topology_.num_vertices(),
        namespace_size_, config_.bandwidth, config_.broadcast_only, &scratch);
    std::vector<NodeId> neighbor_ids;
    for (const Vertex w : topology_.neighbors(v))
      neighbor_ids.push_back(ids_[w]);
    node->set_neighbor_ids(std::move(neighbor_ids));
    auto program = (*factory_)(v);
    CSD_CHECK(program != nullptr);
    // The replica takes over the dead node's arena rows; replay clears them
    // pulse by pulse, so no stale frames leak into the rebuilt state.
    node->attach_frames(
        inbox_arena_.payload_row(v), inbox_arena_.present_row(v),
        outbox_arena_.payload_row(v), outbox_arena_.present_row(v));
    replay_history(*node, *program, inbox_log_[v], sync.pulse);
    outcome_.faults.replayed_pulses += sync.pulse;
    CSD_CHECK_MSG(!node->halted(), "replayed replica halted mid-history");
    node->set_violation_sink(&outcome_.faults.violations);
    if (outcome_.trace) node->set_trace(&outcome_.trace);
    nodes_[v] = std::move(node);
    programs_[v] = std::move(program);
    sync.crashed = false;
    sync.running = true;
    sync.local_time = std::max(sync.local_time, event.time);
    outcome_.faults.recovered_nodes.push_back(v);
    if (telemetry_ != nullptr) {
      m_recoveries_.add();
      telemetry_->record(obs::EventKind::NodeRecover, v, event.time);
    }
    if (outcome_.trace) outcome_.trace.set_phase(sync.pulse, "recover");
    --stopped_count_;
  }

  std::uint64_t config_digest() const {
    // Everything the continuation dynamics depend on. Deliberately excludes
    // checkpoint_at_pulse, stall_window, and trace options: a resumed run
    // may checkpoint at a different point or trace differently.
    std::uint64_t h = kDigestSeed;
    h = digest_mix(h, config_.bandwidth);
    h = digest_mix(h, config_.max_pulses);
    h = digest_mix(h, config_.namespace_size);
    h = digest_mix(h, config_.broadcast_only ? 1 : 0);
    h = digest_mix(h, config_.max_delay);
    h = digest_mix(h, static_cast<std::uint64_t>(config_.transport));
    h = digest_mix(h, config_.transport_cfg.rto);
    h = digest_mix(h, config_.transport_cfg.max_retries);
    h = digest_mix(h, config_.transport_cfg.seq_bits);
    h = digest_mix(h, config_.transport_cfg.crc_bits);
    h = digest_mix(h, config_.recovery.enabled ? 1 : 0);
    h = digest_mix(h, config_.recovery.rejoin_delay);
    h = digest_mix(h, config_.recovery.max_recoveries);
    h = digest_mix(h, fault_plan_digest(config_.faults));
    return h;
  }

  static EventRecord to_record(const Event& event) {
    EventRecord record;
    record.time = event.time;
    record.seq = event.seq;
    record.kind = static_cast<std::uint8_t>(event.kind);
    record.src = event.src;
    record.src_port = event.src_port;
    record.dst = event.dst;
    record.dst_port = event.dst_port;
    record.link_seq = event.link_seq;
    record.packet_seq = event.packet.seq;
    record.packet_crc = event.packet.crc;
    record.frame = event.packet.frame;
    return record;
  }

  static Event from_record(const EventRecord& record) {
    CSD_CHECK_MSG(record.kind <= 3, "unknown event kind in snapshot");
    Event event;
    event.time = record.time;
    event.seq = record.seq;
    event.kind = static_cast<Event::Kind>(record.kind);
    event.src = record.src;
    event.src_port = record.src_port;
    event.dst = record.dst;
    event.dst_port = record.dst_port;
    event.link_seq = record.link_seq;
    event.packet.seq = record.packet_seq;
    event.packet.crc = record.packet_crc;
    event.packet.frame = record.frame;
    return event;
  }

  /// Freeze the complete engine between two scheduler events. Pure copies —
  /// no RNG consumed, no state mutated — so capture never perturbs the run.
  void capture_checkpoint(bool terminal = false) {
    auto snap = std::make_shared<Snapshot>();
    snap->kind = Snapshot::Kind::Async;
    AsyncSnapshot& s = snap->async_state;
    s.terminal = terminal ? 1 : 0;
    s.identity = {topology_digest(topology_, ids_), config_digest(),
                  config_.seed};
    const Vertex n = topology_.num_vertices();
    s.nodes.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto& sync = sync_[v];
      AsyncNodeSnapshot& ns = s.nodes[v];
      ns.pulse = sync.pulse;
      ns.local_time = sync.local_time;
      ns.arrived.resize(sync.arrived.size());
      for (std::uint32_t p = 0; p < sync.arrived.size(); ++p)
        ns.arrived[p].assign(sync.arrived[p].begin(), sync.arrived[p].end());
      ns.port_dead.assign(sync.port_dead.begin(), sync.port_dead.end());
      ns.running = sync.running ? 1 : 0;
      ns.crashed = sync.crashed ? 1 : 0;
      ns.halted = nodes_[v]->halted() ? 1 : 0;
      ns.crash_done = sync.crash_done ? 1 : 0;
      ns.recoveries_used = sync.recoveries_used;
      ns.inbox = inbox_log_[v];
      if (reliable_) {
        for (std::uint32_t p = 0; p < topology_.degree(v); ++p) {
          ns.senders.push_back(senders_[v][p].save_state());
          ns.receivers.push_back(receivers_[v][p].save_state());
        }
      }
      ns.link_watermark = link_watermark_[v];
    }
    auto queue = events_;
    while (!queue.empty()) {
      s.events.push_back(to_record(queue.top()));
      queue.pop();
    }
    s.next_event_seq = next_event_seq_;
    s.delay_rng = delay_rng_.state();
    if (injector_.has_value()) s.fault_streams = injector_->save_streams();
    s.halted_count = halted_count_;
    s.stopped_count = stopped_count_;
    s.pending_recoveries = pending_recoveries_;
    s.pulses = outcome_.pulses;
    s.virtual_time = outcome_.virtual_time;
    s.payload_bits = outcome_.payload_bits;
    s.overhead_bits = outcome_.overhead_bits;
    s.frames = outcome_.frames;
    s.transport_bits = outcome_.transport_bits;
    s.acks = outcome_.acks;
    s.faults = outcome_.faults;
    outcome_.checkpoint = std::move(snap);
    if (telemetry_ != nullptr)
      telemetry_->record(obs::EventKind::CheckpointSave, 0, outcome_.pulses);
  }

  void restore(const Snapshot& snapshot) {
    CSD_CHECK_MSG(snapshot.kind == Snapshot::Kind::Async,
                  "resume_async needs an async snapshot, got "
                      << to_string(snapshot.kind));
    const AsyncSnapshot& s = snapshot.async_state;
    CSD_CHECK_MSG(s.identity.topology == topology_digest(topology_, ids_),
                  "snapshot belongs to a different topology/identifier "
                  "assignment");
    CSD_CHECK_MSG(s.identity.config == config_digest(),
                  "snapshot belongs to a different engine configuration");
    CSD_CHECK_MSG(s.identity.seed == config_.seed,
                  "snapshot belongs to a different seed");
    const Vertex n = topology_.num_vertices();
    CSD_CHECK_MSG(s.nodes.size() == n, "snapshot node count mismatch");

    std::vector<ProtocolViolation> scratch;
    for (Vertex v = 0; v < n; ++v) {
      const AsyncNodeSnapshot& ns = s.nodes[v];
      auto& sync = sync_[v];
      const std::uint32_t deg = topology_.degree(v);
      CSD_CHECK_MSG(ns.arrived.size() == deg && ns.port_dead.size() == deg &&
                        ns.link_watermark.size() == deg,
                    "snapshot degree mismatch at node " << v);
      sync.pulse = ns.pulse;
      sync.local_time = ns.local_time;
      for (std::uint32_t p = 0; p < deg; ++p) {
        sync.arrived[p].assign(ns.arrived[p].begin(), ns.arrived[p].end());
        sync.port_dead[p] = ns.port_dead[p] != 0;
      }
      sync.running = ns.running != 0;
      sync.crashed = ns.crashed != 0;
      sync.crash_done = ns.crash_done != 0;
      sync.recoveries_used = ns.recoveries_used;
      if (log_enabled_) inbox_log_[v] = ns.inbox;
      if (reliable_) {
        CSD_CHECK_MSG(ns.senders.size() == deg && ns.receivers.size() == deg,
                      "snapshot transport state mismatch at node " << v);
        for (std::uint32_t p = 0; p < deg; ++p) {
          senders_[v][p].restore_state(ns.senders[p]);
          receivers_[v][p].restore_state(ns.receivers[p]);
        }
      }
      link_watermark_[v] = ns.link_watermark;
      if (!sync.crashed) {
        // Reconstruct the program by replay. Crashed nodes are skipped: a
        // permanently dead program never runs again, and a pending recovery
        // builds its own fresh replica from the log when its Recover event
        // fires.
        nodes_[v]->set_violation_sink(&scratch);
        nodes_[v]->set_trace(nullptr);
        replay_history(*nodes_[v], *programs_[v], ns.inbox, sync.pulse);
        CSD_CHECK_MSG(nodes_[v]->halted() == (ns.halted != 0),
                      "resume replay diverged: node " << v << " halt state");
        nodes_[v]->set_violation_sink(&outcome_.faults.violations);
        if (outcome_.trace) nodes_[v]->set_trace(&outcome_.trace);
      }
    }
    for (const EventRecord& record : s.events)
      events_.push(from_record(record));
    next_event_seq_ = s.next_event_seq;
    delay_rng_.set_state(s.delay_rng);
    if (injector_.has_value()) injector_->restore_streams(s.fault_streams);
    halted_count_ = s.halted_count;
    stopped_count_ = s.stopped_count;
    pending_recoveries_ = s.pending_recoveries;
    Vertex pending = 0;
    for (const EventRecord& record : s.events)
      if (record.kind == 3) {  // Recover
        sync_[record.src].recovery_pending = true;
        ++pending;
      }
    CSD_CHECK_MSG(pending == pending_recoveries_,
                  "snapshot recovery bookkeeping inconsistent");
    outcome_.pulses = s.pulses;
    outcome_.virtual_time = s.virtual_time;
    outcome_.payload_bits = s.payload_bits;
    outcome_.overhead_bits = s.overhead_bits;
    outcome_.frames = s.frames;
    outcome_.transport_bits = s.transport_bits;
    outcome_.acks = s.acks;
    outcome_.faults = s.faults;
    last_progress_vt_ = s.virtual_time;
  }

  Graph topology_;
  AsyncConfig config_;
  bool reliable_;
  std::vector<NodeId> ids_;
  const ProgramFactory* factory_;  // outlives the engine (recovery replicas)
  Rng delay_rng_;
  std::optional<FaultInjector> injector_;
  std::uint64_t base_rto_ = 0;
  std::uint64_t namespace_size_ = 0;
  std::uint64_t rejoin_delay_ = 0;
  bool log_enabled_ = false;
  std::vector<InboxLog> inbox_log_;
  Vertex pending_recoveries_ = 0;
  std::uint64_t last_progress_vt_ = 0;
  /// Materialized CSR view of topology_ (owned by it).
  const GraphCsr* csr_ = nullptr;
  /// rev_port_[e] = receiver-side port of directed edge e = offsets[v] + p.
  std::vector<std::uint32_t> rev_port_;
  /// Per-run frame plane; nodes (and recovery replicas) hold row pointers.
  detail::FrameArena inbox_arena_;
  detail::FrameArena outbox_arena_;
  std::vector<std::vector<std::uint64_t>> link_watermark_;
  std::vector<std::unique_ptr<detail::NodeState>> nodes_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<SyncState> sync_;
  std::vector<std::vector<LinkSender>> senders_;      // reliable mode only
  std::vector<std::vector<LinkReceiver>> receivers_;  // reliable mode only
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_event_seq_ = 0;
  Vertex halted_count_ = 0;   // gracefully halted
  Vertex stopped_count_ = 0;  // halted or crashed
  bool pulse_cap_hit_ = false;
  bool timing_ = false;
  // csd-metrics-v2 plane (non-owning; nullptr = every site inert).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter m_pulses_, m_frames_, m_retransmits_, m_crc_rejects_, m_drops_,
      m_corrupts_, m_crashes_, m_recoveries_;
  obs::Gauge m_queue_depth_;
  obs::Histogram m_payload_hist_;
  AsyncRunOutcome outcome_;
};

}  // namespace

AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          std::vector<NodeId> ids,
                          const ProgramFactory& factory) {
  AsyncEngine engine(topology, config, std::move(ids), factory);
  return engine.run();
}

AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          const ProgramFactory& factory) {
  std::vector<NodeId> ids(topology.num_vertices());
  for (Vertex v = 0; v < topology.num_vertices(); ++v) ids[v] = v;
  return run_async(topology, config, std::move(ids), factory);
}

AsyncRunOutcome resume_async(const Graph& topology, const AsyncConfig& config,
                             std::vector<NodeId> ids,
                             const ProgramFactory& factory,
                             const Snapshot& snapshot) {
  AsyncEngine engine(topology, config, std::move(ids), factory);
  return engine.resume(snapshot);
}

AsyncRunOutcome resume_async(const Graph& topology, const AsyncConfig& config,
                             const ProgramFactory& factory,
                             const Snapshot& snapshot) {
  std::vector<NodeId> ids(topology.num_vertices());
  for (Vertex v = 0; v < topology.num_vertices(); ++v) ids[v] = v;
  return resume_async(topology, config, std::move(ids), factory, snapshot);
}

}  // namespace csd::congest
