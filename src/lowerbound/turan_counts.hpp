// Lemma 1.3 machinery: any graph with m edges contains at most O(m^{s/2})
// copies of K_s. This is the combinatorial engine behind extending the
// Ω̃(n^{1/3}) triangle-listing lower bound to Ω̃(n^{1-2/s}) for K_s-listing
// in the congested clique.
//
// We machine-check the finite form of the lemma — #K_s(G) ≤ m^{s/2} (the
// Kruskal–Katona-flavored bound holds with constant 1 in this normalization
// for s >= 2, attained asymptotically by cliques where
// #K_s = C(t, s) ≈ (2m)^{s/2}/s!) — across graph families, and report how
// close each family pushes the ratio, reproducing the lemma's tightness
// discussion.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace csd::lb {

struct CliqueCountReport {
  std::string family;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint32_t s = 0;
  std::uint64_t clique_count = 0;
  double bound = 0;   // m^{s/2}
  double ratio = 0;   // clique_count / bound, must stay <= 1 and O(1/s!)
};

/// Count K_s copies exhaustively and compare against m^{s/2}.
CliqueCountReport check_clique_count_bound(const Graph& g, std::uint32_t s,
                                           const std::string& family);

/// The lemma's extremal ratio s!⁻¹·2^{s/2} · (1 + o(1)) reference value for
/// a clique host (what K_t achieves as t → ∞).
double clique_host_limit_ratio(std::uint32_t s);

}  // namespace csd::lb
