#include "lowerbound/gkn.hpp"

#include "support/check.hpp"
#include "support/combinatorics.hpp"
#include "support/mathutil.hpp"

namespace csd::lb {

namespace {
constexpr std::uint32_t kCliqueSizes[] = {6, 7, 8, 9, 10};
constexpr std::uint32_t kCliqueVertexCount = 40;

std::uint32_t side_index(Side s) { return s == Side::Top ? 0 : 1; }
std::uint32_t corner_index(Corner c) {
  return c == Corner::A ? 0 : (c == Corner::B ? 1 : 2);
}
}  // namespace

Vertex GknLayout::endpoint(Side side, Corner direction,
                           std::uint32_t i) const {
  CSD_CHECK_MSG(direction != Corner::Mid, "endpoints are A or B only");
  CSD_CHECK_MSG(i < n, "endpoint index out of range");
  const std::uint32_t block = side_index(side) * 2 + corner_index(direction);
  return block * n + i;
}

Vertex GknLayout::triangle_vertex(Side side, std::uint32_t j,
                                  Corner corner) const {
  CSD_CHECK_MSG(j < m, "triangle index out of range");
  return 4 * n + side_index(side) * (3 * m) + 3 * j + corner_index(corner);
}

Vertex GknLayout::clique_vertex(std::uint32_t s, std::uint32_t j) const {
  CSD_CHECK_MSG(s >= 6 && s <= 10 && j < s, "bad clique vertex");
  std::uint32_t off = 0;
  for (const auto size : kCliqueSizes) {
    if (size == s) break;
    off += size;
  }
  return 4 * n + 6 * m + off + j;
}

Vertex GknLayout::num_vertices() const {
  return 4 * n + 6 * m + kCliqueVertexCount;
}

std::vector<std::uint32_t> GknLayout::subset_of(std::uint32_t i) const {
  return unrank_k_subset(i, m, k);
}

GknGraph build_gkn_frame(std::uint32_t k, std::uint32_t n) {
  CSD_CHECK_MSG(k >= 1 && n >= 1, "G_{k,n} requires k, n >= 1");
  GknGraph out;
  GknLayout& l = out.layout;
  l.k = k;
  l.n = n;
  l.m = static_cast<std::uint32_t>(
      k * ceil_kth_root(n, k));  // m = k⌈n^{1/k}⌉
  CSD_CHECK_MSG(binomial(l.m, k) >= n,
                "subset encoding too small: C(m,k) < n");

  Graph& g = out.graph;
  g.add_vertices(l.num_vertices());

  // Marker cliques + the 5-clique of fixed vertices.
  for (const auto s : kCliqueSizes)
    for (std::uint32_t a = 0; a < s; ++a)
      for (std::uint32_t b = a + 1; b < s; ++b)
        g.add_edge(l.clique_vertex(s, a), l.clique_vertex(s, b));
  for (std::uint32_t si = 0; si < 5; ++si)
    for (std::uint32_t sj = si + 1; sj < 5; ++sj)
      g.add_edge(l.fixed_vertex(kCliqueSizes[si]),
                 l.fixed_vertex(kCliqueSizes[sj]));

  for (const Side side : {Side::Top, Side::Bottom}) {
    // Triangles + marker attachment per corner class.
    for (std::uint32_t j = 0; j < l.m; ++j) {
      const Vertex a = l.triangle_vertex(side, j, Corner::A);
      const Vertex b = l.triangle_vertex(side, j, Corner::B);
      const Vertex mid = l.triangle_vertex(side, j, Corner::Mid);
      g.add_edge(a, b);
      g.add_edge(b, mid);
      g.add_edge(a, mid);
      g.add_edge(a, l.fixed_vertex(marker_clique_size(side, Corner::A)));
      g.add_edge(b, l.fixed_vertex(marker_clique_size(side, Corner::B)));
      g.add_edge(mid, l.fixed_vertex(marker_clique_size(side, Corner::Mid)));
    }
    // Endpoints: marker attachment + wiring into the Q_i triangles.
    for (const Corner dir : {Corner::A, Corner::B}) {
      for (std::uint32_t i = 0; i < n; ++i) {
        const Vertex end = l.endpoint(side, dir, i);
        g.add_edge(end, l.fixed_vertex(marker_clique_size(side, dir)));
        for (const auto j : l.subset_of(i))
          g.add_edge(end, l.triangle_vertex(side, j, dir));
      }
    }
  }
  return out;
}

GknGraph build_gxy(std::uint32_t k, std::uint32_t n,
                   const comm::DisjointnessInstance& inst) {
  CSD_CHECK_MSG(inst.universe == static_cast<std::uint64_t>(n) * n,
                "disjointness universe must be n^2");
  GknGraph out = build_gkn_frame(k, n);
  const GknLayout& l = out.layout;
  for (const auto e : inst.x) {
    const auto [i, j] = comm::element_to_pair(e, n);
    out.graph.add_edge(
        l.endpoint(Side::Top, Corner::A, static_cast<std::uint32_t>(i)),
        l.endpoint(Side::Bottom, Corner::A, static_cast<std::uint32_t>(j)));
  }
  for (const auto e : inst.y) {
    const auto [i, j] = comm::element_to_pair(e, n);
    out.graph.add_edge(
        l.endpoint(Side::Top, Corner::B, static_cast<std::uint32_t>(i)),
        l.endpoint(Side::Bottom, Corner::B, static_cast<std::uint32_t>(j)));
  }
  return out;
}

std::vector<comm::Owner> gkn_ownership(const GknLayout& l) {
  std::vector<comm::Owner> owner(l.num_vertices(), comm::Owner::Shared);
  for (const Side side : {Side::Top, Side::Bottom}) {
    for (std::uint32_t i = 0; i < l.n; ++i) {
      owner[l.endpoint(side, Corner::A, i)] = comm::Owner::Alice;
      owner[l.endpoint(side, Corner::B, i)] = comm::Owner::Bob;
    }
    for (std::uint32_t j = 0; j < l.m; ++j) {
      owner[l.triangle_vertex(side, j, Corner::A)] = comm::Owner::Alice;
      owner[l.triangle_vertex(side, j, Corner::B)] = comm::Owner::Bob;
      // Mid corners stay shared.
    }
  }
  for (const auto s : {6u, 8u})
    for (std::uint32_t j = 0; j < s; ++j)
      owner[l.clique_vertex(s, j)] = comm::Owner::Alice;
  for (const auto s : {7u, 9u})
    for (std::uint32_t j = 0; j < s; ++j)
      owner[l.clique_vertex(s, j)] = comm::Owner::Bob;
  // Clique 10 stays shared.
  return owner;
}

bool contains_hk_structurally(const GknLayout& l, const Graph& g) {
  // Lemma 3.1: some (i⊤, i⊥) pair has both its A and B top-bottom edges.
  for (std::uint32_t i = 0; i < l.n; ++i)
    for (std::uint32_t j = 0; j < l.n; ++j)
      if (g.has_edge(l.endpoint(Side::Top, Corner::A, i),
                     l.endpoint(Side::Bottom, Corner::A, j)) &&
          g.has_edge(l.endpoint(Side::Top, Corner::B, i),
                     l.endpoint(Side::Bottom, Corner::B, j)))
        return true;
  return false;
}

bool contains_hk_structurally(const GknGraph& g) {
  return contains_hk_structurally(g.layout, g.graph);
}

}  // namespace csd::lb
