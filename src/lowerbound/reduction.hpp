// Executable form of the Theorem 1.2 reduction (§3.3).
//
// Alice and Bob hold a set-disjointness instance X, Y ⊆ [n]²; they build
// G_{X,Y} ∈ G_{k,n} and simulate an H_k-detection algorithm over the vertex
// partition (V_A | shared | V_B), paying for every message that crosses the
// cut. We run that simulation for real — with the generic collect-and-check
// detector standing in for "any algorithm" — and measure:
//
//   * the structural cut (Θ(k n^{1/k}) edges), hence the per-round
//     simulation cost Θ(k n^{1/k} · B) the proof charges;
//   * the implied round lower bound n² / (cut · B) for any algorithm, since
//     randomized disjointness on [n]² costs Ω(n²) bits [KS'92, Razborov'92];
//   * end-to-end correctness: the simulated run must detect H_k exactly
//     when X ∩ Y ≠ ∅ (Lemma 3.1).
#pragma once

#include <cstdint>

#include "comm/cut_simulator.hpp"
#include "comm/disjointness.hpp"
#include "lowerbound/gkn.hpp"

namespace csd::lb {

struct ReductionReport {
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  std::uint64_t graph_size = 0;   // |V(G_{X,Y})|
  std::uint64_t cut_edges = 0;    // structural simulation cut
  std::uint64_t bandwidth = 0;    // B
  bool expected_contains = false; // X ∩ Y ≠ ∅
  bool detected = false;          // simulated algorithm's verdict
  std::uint64_t rounds = 0;       // rounds the simulated algorithm took
  std::uint64_t crossing_bits = 0;
  std::uint64_t max_crossing_bits_per_round = 0;

  /// Ω(n²) disjointness bits divided by the per-round budget cut·B: the
  /// round lower bound Theorem 1.2 yields for *any* algorithm on G_{k,n}.
  double implied_round_lower_bound() const;
};

/// Run the full reduction on one instance.
ReductionReport run_reduction(std::uint32_t k, std::uint32_t n,
                              const comm::DisjointnessInstance& inst,
                              std::uint64_t bandwidth, std::uint64_t seed);

}  // namespace csd::lb
