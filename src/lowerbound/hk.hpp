// The graph H_k of Theorem 1.2 (Figure 1 of the paper).
//
// H_k is the constant-diameter subgraph whose detection requires
// Ω(n^{2-1/k}/(Bk)) rounds. Structure (§3.1):
//   * five "marker" cliques, one of each size s = 6..10; vertex 0 of each is
//     its special vertex v_s, and the five special vertices form a 5-clique;
//   * two copies ("top" ⊤ and "bottom" ⊥) of a body H: k triangles
//     Tri_1..Tri_k with corners (i,A), (i,B), (i,Mid), plus endpoints A and
//     B, where endpoint A is adjacent to every (i,A) and endpoint B to every
//     (i,B);
//   * exactly two top-bottom edges: ⊤A–⊥A and ⊤B–⊥B;
//   * every non-clique vertex is attached to exactly one special vertex,
//     with the marking c(S,P): (⊤,A)→6, (⊥,A)→8, (⊤,B)→7, (⊥,B)→9,
//     (·,Mid)→10 — chosen so that in the two-party simulation all of a
//     player's marker cliques are on that player's side of the cut.
//
// The full formal construction appears only in the paper's full version;
// this instantiation follows the conference description and is validated by
// machine-checked properties (size O(k), diameter 3, Lemma 3.1 at small
// sizes via the VF2 oracle).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace csd::lb {

/// Which side of the two-party simulation a class of vertices belongs to.
enum class Side : std::uint8_t { Top, Bottom };
enum class Corner : std::uint8_t { A, B, Mid };

/// Marker-clique size attached to vertices of class (side, corner):
/// c(⊤,A)=6, c(⊥,A)=8, c(⊤,B)=7, c(⊥,B)=9, c(·,Mid)=10.
std::uint32_t marker_clique_size(Side side, Corner corner);

/// Vertex layout of H_k, exposing the indices of each structural class so
/// tests and the G_{k,n} construction can refer to them.
struct HkLayout {
  std::uint32_t k = 0;

  /// clique_vertex(s, j): j-th vertex of the size-s clique, j = 0 special.
  Vertex clique_vertex(std::uint32_t s, std::uint32_t j) const;
  Vertex special_vertex(std::uint32_t s) const { return clique_vertex(s, 0); }

  /// Endpoint of the given side/direction (direction ∈ {A, B}).
  Vertex endpoint(Side side, Corner direction) const;

  /// Corner P of triangle i (0-based) on the given side.
  Vertex triangle_vertex(Side side, std::uint32_t i, Corner corner) const;

  Vertex num_vertices() const;
};

/// Builds H_k together with its layout. Requires k >= 1.
struct HkGraph {
  Graph graph;
  HkLayout layout;
};

HkGraph build_hk(std::uint32_t k);

}  // namespace csd::lb
