// The lower-bound graph family G_{k,n} of Definition 2 (Figure 2).
//
// A graph G_{X,Y} ∈ G_{k,n} encodes a set-disjointness instance
// X, Y ⊆ [n]×[n]:
//   * n potential top/bottom endpoints per direction P ∈ {A, B};
//   * 2m triangles, m = k⌈n^{1/k}⌉, indexed by {⊤,⊥}×[m];
//   * one marker clique of each size 6..10 (fixed vertex = index 0), fixed
//     vertices mutually adjacent;
//   * endpoint (S, P, i) is wired to the P-corners of the k triangles in
//     Q_i, where Q_i is the i-th k-subset of [m] (a distinct-subset
//     encoding: C(m, k) >= n);
//   * Alice adds edge (⊤,A,i)–(⊥,A,j) iff (i,j) ∈ X; Bob adds
//     (⊤,B,i)–(⊥,B,j) iff (i,j) ∈ Y.
//
// Lemma 3.1: G_{X,Y} contains H_k iff some pair (i⊤, i⊥) has both its
// A-edge and its B-edge present — i.e. iff X ∩ Y ≠ ∅.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cut_simulator.hpp"
#include "comm/disjointness.hpp"
#include "graph/graph.hpp"
#include "lowerbound/hk.hpp"

namespace csd::lb {

/// Vertex layout of a member of G_{k,n}.
struct GknLayout {
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  std::uint32_t m = 0;  // k·⌈n^{1/k}⌉ triangles per side

  Vertex endpoint(Side side, Corner direction, std::uint32_t i) const;
  Vertex triangle_vertex(Side side, std::uint32_t j, Corner corner) const;
  Vertex clique_vertex(std::uint32_t s, std::uint32_t j) const;
  Vertex fixed_vertex(std::uint32_t s) const { return clique_vertex(s, 0); }
  Vertex num_vertices() const;

  /// The k-subset Q_i ⊆ [m] encoding endpoint index i.
  std::vector<std::uint32_t> subset_of(std::uint32_t i) const;
};

struct GknGraph {
  Graph graph;
  GknLayout layout;
};

/// Builds G_{X,Y} for the given disjointness instance over [n]².
/// inst.universe must equal n².
GknGraph build_gxy(std::uint32_t k, std::uint32_t n,
                   const comm::DisjointnessInstance& inst);

/// Builds the input-free frame (no endpoint-to-endpoint edges).
GknGraph build_gkn_frame(std::uint32_t k, std::uint32_t n);

/// The two-party ownership partition of §3.3: Alice owns all A-endpoints,
/// A-corners and cliques 6, 8; Bob the B-side and cliques 7, 9; the Mid
/// corners and clique 10 are shared.
std::vector<comm::Owner> gkn_ownership(const GknLayout& layout);

/// Structural Lemma 3.1 decision: true iff some (i⊤, i⊥) has both the A and
/// the B top-bottom edge — equivalently, iff G contains H_k.
bool contains_hk_structurally(const GknGraph& g);

/// Decides Lemma 3.1's condition directly on an edge list keyed by node
/// identifiers equal to topology indices (used by the simulated algorithm's
/// local check, where the collected graph is indexed by node ids).
bool contains_hk_structurally(const GknLayout& layout, const Graph& collected);

}  // namespace csd::lb
