#include "lowerbound/fooling.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "congest/run_batch.hpp"
#include "graph/builders.hpp"
#include "info/flat_counts.hpp"
#include "support/bitvec.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::lb {

namespace {

/// Canonical §4 transcript: for each node in namespace order, its messages
/// to the "+1" neighbor in round order, then to the "+2" neighbor. Encoded
/// as a '0'/'1' string with part boundaries marked (markers are bookkeeping
/// only — the algorithm's own messages must be prefix-free, which the wire
/// codec guarantees, so the raw bit stream is uniquely parsable too).
///
/// `position_of[v]` maps a topology index to its part (0, 1, 2);
/// `plus_one[v]` is the topology index of v's "+1" neighbor.
std::string canonical_transcript(
    const std::vector<congest::TranscriptEntry>& transcript,
    const std::array<std::uint32_t, 6>& plus_one, std::uint32_t num_nodes) {
  std::string out;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    for (const bool towards_plus_one : {true, false}) {
      for (const auto& entry : transcript) {
        if (entry.src != v) continue;
        const bool is_plus_one = entry.dst == plus_one[v];
        if (is_plus_one != towards_plus_one) continue;
        for (std::size_t b = 0; b < entry.payload.size(); ++b)
          out.push_back(entry.payload.get(b) ? '1' : '0');
      }
      out.push_back('|');
    }
    out.push_back('#');
  }
  return out;
}

/// FNV-1a over the canonical transcript string. Platform-independent (the
/// std::hash<string> alternative is implementation-defined), so sampled
/// collision counts are bit-identical across toolchains.
std::uint64_t transcript_hash(const std::string& transcript) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : transcript) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Per-node slice of a canonical transcript (between '#' markers).
std::vector<std::string> split_by_node(const std::string& transcript) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : transcript) {
    if (c == '#') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return parts;
}

}  // namespace

FoolingReport run_fooling_adversary(const FoolingConfig& config) {
  CSD_CHECK_MSG(config.namespace_size >= 6 && config.namespace_size % 3 == 0,
                "namespace must be divisible by 3 and >= 6");
  CSD_CHECK_MSG(config.algorithm != nullptr, "algorithm factory required");
  const std::uint64_t n = config.namespace_size / 3;

  FoolingReport report;
  report.part_size = n;
  report.executions = n * n * n;
  report.all_triangles_rejected = true;

  // Triangle topology 0-1-2; node i plays namespace part i. The "+1"
  // neighbor of node i is node (i+1) mod 3.
  const Graph triangle = build::cycle(3);
  const std::array<std::uint32_t, 6> tri_plus_one = {1, 2, 0, 0, 0, 0};

  congest::NetworkConfig run_cfg;
  run_cfg.bandwidth = config.bandwidth;
  run_cfg.max_rounds = config.max_rounds;
  run_cfg.namespace_size = config.namespace_size;
  run_cfg.record_transcript = true;

  // Bucket all n^3 executions by canonical transcript.
  std::map<std::string, std::vector<std::array<std::uint64_t, 3>>> buckets;
  for (std::uint64_t a = 0; a < n; ++a) {
    for (std::uint64_t b = 0; b < n; ++b) {
      for (std::uint64_t c = 0; c < n; ++c) {
        const congest::NodeId u0 = a;
        const congest::NodeId u1 = n + b;
        const congest::NodeId u2 = 2 * n + c;
        congest::Network net(triangle, run_cfg, {u0, u1, u2});
        const auto outcome = net.run(config.algorithm);
        CSD_CHECK_MSG(outcome.completed,
                      "algorithm did not halt on a triangle");
        report.all_triangles_rejected &= outcome.detected;
        for (const auto& node_bits : outcome.metrics.bits_sent_by_node)
          report.max_total_bits_per_node =
              std::max(report.max_total_bits_per_node, node_bits);
        buckets[canonical_transcript(outcome.transcript, tri_plus_one, 3)]
            .push_back({a, b, c});
      }
    }
  }
  report.distinct_transcripts = buckets.size();

  // Largest class S_t.
  const std::vector<std::array<std::uint64_t, 3>>* largest = nullptr;
  std::string transcript_t;
  for (const auto& [t, triples] : buckets) {
    if (largest == nullptr || triples.size() > largest->size()) {
      largest = &triples;
      transcript_t = t;
    }
  }
  CSD_CHECK(largest != nullptr);
  report.largest_class = largest->size();

  // Box search: membership bitsets over N_2 for each (a, b) pair.
  std::vector<BitVec> slab(n * n, BitVec(n));
  for (const auto& [a, b, c] : *largest) slab[a * n + b].set(c);

  std::optional<std::array<std::uint64_t, 6>> box;  // a a' b b' c c'
  for (std::uint64_t a = 0; a < n && !box; ++a) {
    for (std::uint64_t a2 = a + 1; a2 < n && !box; ++a2) {
      for (std::uint64_t b = 0; b < n && !box; ++b) {
        for (std::uint64_t b2 = b + 1; b2 < n && !box; ++b2) {
          BitVec common = slab[a * n + b];
          common &= slab[a * n + b2];
          common &= slab[a2 * n + b];
          common &= slab[a2 * n + b2];
          const std::size_t c1 = common.find_next(0);
          if (c1 >= common.size()) continue;
          const std::size_t c2 = common.find_next(c1 + 1);
          if (c2 >= common.size()) continue;
          box = {a, a2, b, b2, c1, c2};
        }
      }
    }
  }
  if (!box) return report;  // adversary failed: algorithm is safe at this N
  report.box_found = true;

  // Hexagon Q = u0 u1 u2 u0' u1' u2' (cyclic). Claim 4.4 requires each
  // node's two neighbors to come from the other two parts — true in this
  // order. Topology indices follow the cycle; ids carry the box values.
  const congest::NodeId u0 = (*box)[0], u0p = (*box)[1];
  const congest::NodeId u1 = n + (*box)[2], u1p = n + (*box)[3];
  const congest::NodeId u2 = 2 * n + (*box)[4], u2p = 2 * n + (*box)[5];
  report.hexagon = {u0, u1, u2, u0p, u1p, u2p};

  const Graph hexagon = build::cycle(6);
  // Topology index i hosts hexagon[i]; part of index i is i mod 3; the "+1"
  // neighbor (next part cyclically) of index i is index (i+1) mod 6.
  const std::array<std::uint32_t, 6> hex_plus_one = {1, 2, 3, 4, 5, 0};

  congest::Network net(hexagon, run_cfg,
                       {u0, u1, u2, u0p, u1p, u2p});
  const auto outcome = net.run(config.algorithm);
  CSD_CHECK_MSG(outcome.completed, "algorithm did not halt on the hexagon");
  report.hexagon_fooled = outcome.detected;

  // Claim 4.4: per-node hexagon transcripts equal the triangle transcript
  // slices t_0 t_1 t_2 (each appearing twice).
  const auto tri_parts = split_by_node(transcript_t);
  const auto hex_parts = split_by_node(
      canonical_transcript(outcome.transcript, hex_plus_one, 6));
  CSD_CHECK(tri_parts.size() == 3 && hex_parts.size() == 6);
  report.transcripts_match = true;
  for (std::uint32_t i = 0; i < 6; ++i)
    report.transcripts_match &= hex_parts[i] == tri_parts[i % 3];
  return report;
}

TranscriptSampleReport sample_transcript_collisions(const FoolingConfig& config,
                                                    std::uint64_t samples,
                                                    std::uint64_t seed,
                                                    unsigned jobs) {
  CSD_CHECK_MSG(config.namespace_size >= 6 && config.namespace_size % 3 == 0,
                "namespace must be divisible by 3 and >= 6");
  CSD_CHECK_MSG(config.algorithm != nullptr, "algorithm factory required");
  CSD_CHECK_MSG(samples > 0, "need at least one sample");
  const std::uint64_t n = config.namespace_size / 3;

  TranscriptSampleReport report;
  report.part_size = n;
  report.samples = samples;
  report.all_triangles_rejected = true;

  // Triples are drawn sequentially up front so the sample set is a pure
  // function of the seed, independent of the fan-out below.
  Rng rng(derive_seed(seed, 0x7a41));
  std::vector<std::array<std::uint64_t, 3>> triples(samples);
  for (auto& t : triples) t = {rng.below(n), rng.below(n), rng.below(n)};

  const Graph triangle = build::cycle(3);
  const std::array<std::uint32_t, 6> tri_plus_one = {1, 2, 0, 0, 0, 0};
  congest::NetworkConfig run_cfg;
  run_cfg.bandwidth = config.bandwidth;
  run_cfg.max_rounds = config.max_rounds;
  run_cfg.namespace_size = config.namespace_size;
  run_cfg.record_transcript = true;

  // Per-index result slots; the sequential fold below keeps the report
  // independent of execution order.
  std::vector<std::uint64_t> hashes(samples);
  std::vector<std::uint64_t> max_bits(samples, 0);
  std::vector<std::uint8_t> rejected(samples, 0);
  congest::RunBatch batch(jobs);
  batch.for_each_index(samples, [&](std::size_t i) {
    const auto& [a, b, c] = triples[i];
    congest::Network net(triangle, run_cfg, {a, n + b, 2 * n + c});
    const auto outcome = net.run(config.algorithm);
    CSD_CHECK_MSG(outcome.completed, "algorithm did not halt on a triangle");
    rejected[i] = outcome.detected ? 1 : 0;
    for (const auto& node_bits : outcome.metrics.bits_sent_by_node)
      max_bits[i] = std::max(max_bits[i], node_bits);
    hashes[i] =
        transcript_hash(canonical_transcript(outcome.transcript, tri_plus_one, 3));
  });

  info::FlatCounts counts;
  counts.reserve(samples);
  for (std::uint64_t i = 0; i < samples; ++i) {
    report.all_triangles_rejected &= rejected[i] != 0;
    report.max_total_bits_per_node =
        std::max(report.max_total_bits_per_node, max_bits[i]);
    counts.add(hashes[i], 1);
  }
  report.distinct_transcripts = counts.distinct();
  for (const auto& item : counts.sorted_items()) {
    report.largest_class = std::max(report.largest_class, item.count);
    report.collision_pairs += item.count * (item.count - 1) / 2;
  }
  return report;
}

}  // namespace csd::lb
