#include "lowerbound/variants.hpp"

#include <set>
#include <utility>

#include "support/check.hpp"

namespace csd::lb {

namespace {

using EdgeSet = std::set<std::pair<Vertex, Vertex>>;

std::pair<Vertex, Vertex> ordered(Vertex a, Vertex b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

/// Rebuild `g` without the edges in `drop` and, when strip_markers is set,
/// without any edge incident to `is_marker`.
template <typename IsMarker>
Graph filter_edges(const Graph& g, const EdgeSet& drop, bool strip_markers,
                   IsMarker&& is_marker) {
  Graph out(g.num_vertices());
  for (const auto& [u, v] : g.edges()) {
    if (drop.count(ordered(u, v)) != 0) continue;
    if (strip_markers && (is_marker(u) || is_marker(v))) continue;
    out.add_edge(u, v);
  }
  return out;
}

}  // namespace

HkGraph build_hk_variant(std::uint32_t k, const ConstructionVariant& v) {
  HkGraph full = build_hk(k);
  if (v.triangle_body && v.markers) return full;

  EdgeSet drop;
  if (!v.triangle_body) {
    for (const Side side : {Side::Top, Side::Bottom})
      for (std::uint32_t i = 0; i < k; ++i)
        drop.insert(ordered(full.layout.triangle_vertex(side, i, Corner::A),
                            full.layout.triangle_vertex(side, i, Corner::B)));
  }
  // Marker vertices occupy the first 40 indices of the H_k layout.
  const auto is_marker = [](Vertex u) { return u < 40; };
  full.graph = filter_edges(full.graph, drop, !v.markers, is_marker);
  return full;
}

GknGraph build_gxy_variant(std::uint32_t k, std::uint32_t n,
                           const comm::DisjointnessInstance& inst,
                           const ConstructionVariant& v) {
  GknGraph full = build_gxy(k, n, inst);
  if (v.triangle_body && v.markers) return full;

  EdgeSet drop;
  if (!v.triangle_body) {
    for (const Side side : {Side::Top, Side::Bottom})
      for (std::uint32_t j = 0; j < full.layout.m; ++j)
        drop.insert(
            ordered(full.layout.triangle_vertex(side, j, Corner::A),
                    full.layout.triangle_vertex(side, j, Corner::B)));
  }
  // Marker vertices occupy the trailing 40 indices of the G_{k,n} layout.
  const Vertex marker_base = 4 * n + 6 * full.layout.m;
  const auto is_marker = [marker_base](Vertex u) { return u >= marker_base; };
  full.graph = filter_edges(full.graph, drop, !v.markers, is_marker);
  return full;
}

Graph strip_isolated(const Graph& g) {
  std::vector<Vertex> keep;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    if (g.degree(u) > 0) keep.push_back(u);
  return g.induced_subgraph(keep);
}

}  // namespace csd::lb
