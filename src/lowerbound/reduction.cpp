#include "lowerbound/reduction.hpp"

#include "detect/collect.hpp"
#include "support/check.hpp"

namespace csd::lb {

double ReductionReport::implied_round_lower_bound() const {
  const double budget =
      static_cast<double>(cut_edges) * static_cast<double>(bandwidth);
  if (budget == 0) return 0.0;
  return static_cast<double>(n) * static_cast<double>(n) / budget;
}

ReductionReport run_reduction(std::uint32_t k, std::uint32_t n,
                              const comm::DisjointnessInstance& inst,
                              std::uint64_t bandwidth, std::uint64_t seed) {
  const GknGraph g = build_gxy(k, n, inst);
  const auto owner = gkn_ownership(g.layout);

  ReductionReport report;
  report.k = k;
  report.n = n;
  report.graph_size = g.graph.num_vertices();
  report.bandwidth = bandwidth;
  report.expected_contains = inst.intersects();

  congest::NetworkConfig cfg;
  cfg.bandwidth = bandwidth;
  cfg.seed = seed;
  const std::uint64_t budget = detect::collect_round_budget(
      g.graph.num_vertices(), g.graph.num_edges());
  cfg.max_rounds = budget + 1;

  // The simulated H_k-freeness algorithm: collect everything, apply the
  // Lemma 3.1 criterion locally (local computation is free in CONGEST).
  const GknLayout layout = g.layout;
  const auto checker = [layout](const Graph& collected) {
    return contains_hk_structurally(layout, collected);
  };

  const comm::CutCost cost = comm::simulate_across_cut(
      g.graph, owner, cfg, detect::collect_and_check_program(budget, checker));

  CSD_CHECK_MSG(cost.outcome.completed, "simulated algorithm did not halt");
  report.detected = cost.outcome.detected;
  report.rounds = cost.outcome.metrics.rounds;
  report.cut_edges = cost.cut_edges;
  report.crossing_bits = cost.total_crossing_bits();
  report.max_crossing_bits_per_round = cost.max_bits_per_round;
  return report;
}

}  // namespace csd::lb
