#include "lowerbound/hk.hpp"

#include "support/check.hpp"

namespace csd::lb {

namespace {
/// Clique sizes in layout order.
constexpr std::uint32_t kCliqueSizes[] = {6, 7, 8, 9, 10};
constexpr std::uint32_t kCliqueVertexCount = 6 + 7 + 8 + 9 + 10;  // 40

std::uint32_t clique_offset(std::uint32_t s) {
  CSD_CHECK_MSG(s >= 6 && s <= 10, "marker cliques have sizes 6..10");
  std::uint32_t off = 0;
  for (const auto size : kCliqueSizes) {
    if (size == s) return off;
    off += size;
  }
  CSD_CHECK(false);
  return 0;
}
}  // namespace

std::uint32_t marker_clique_size(Side side, Corner corner) {
  switch (corner) {
    case Corner::A:
      return side == Side::Top ? 6u : 8u;
    case Corner::B:
      return side == Side::Top ? 7u : 9u;
    case Corner::Mid:
      return 10u;
  }
  CSD_CHECK(false);
  return 0;
}

Vertex HkLayout::clique_vertex(std::uint32_t s, std::uint32_t j) const {
  CSD_CHECK_MSG(j < s, "clique vertex index out of range");
  return clique_offset(s) + j;
}

Vertex HkLayout::endpoint(Side side, Corner direction) const {
  CSD_CHECK_MSG(direction != Corner::Mid, "endpoints are A or B only");
  const std::uint32_t side_index = side == Side::Top ? 0 : 1;
  const std::uint32_t dir_index = direction == Corner::A ? 0 : 1;
  return kCliqueVertexCount + side_index * 2 + dir_index;
}

Vertex HkLayout::triangle_vertex(Side side, std::uint32_t i,
                                 Corner corner) const {
  CSD_CHECK_MSG(i < k, "triangle index out of range");
  const std::uint32_t side_index = side == Side::Top ? 0 : 1;
  const std::uint32_t corner_index =
      corner == Corner::A ? 0 : (corner == Corner::B ? 1 : 2);
  return kCliqueVertexCount + 4 + side_index * (3 * k) + 3 * i + corner_index;
}

Vertex HkLayout::num_vertices() const {
  return kCliqueVertexCount + 4 + 2 * (3 * k);
}

HkGraph build_hk(std::uint32_t k) {
  CSD_CHECK_MSG(k >= 1, "H_k requires k >= 1");
  HkGraph out;
  out.layout.k = k;
  Graph& g = out.graph;
  const HkLayout& l = out.layout;
  g.add_vertices(l.num_vertices());

  // Marker cliques and the 5-clique of special vertices.
  for (const auto s : kCliqueSizes)
    for (std::uint32_t a = 0; a < s; ++a)
      for (std::uint32_t b = a + 1; b < s; ++b)
        g.add_edge(l.clique_vertex(s, a), l.clique_vertex(s, b));
  for (std::uint32_t si = 0; si < 5; ++si)
    for (std::uint32_t sj = si + 1; sj < 5; ++sj)
      g.add_edge(l.special_vertex(kCliqueSizes[si]),
                 l.special_vertex(kCliqueSizes[sj]));

  for (const Side side : {Side::Top, Side::Bottom}) {
    // Endpoints: marker attachment + connections into the triangles.
    for (const Corner dir : {Corner::A, Corner::B}) {
      const Vertex end = l.endpoint(side, dir);
      g.add_edge(end, l.special_vertex(marker_clique_size(side, dir)));
      for (std::uint32_t i = 0; i < k; ++i)
        g.add_edge(end, l.triangle_vertex(side, i, dir));
    }
    // Triangles: the three sides + marker attachments per corner.
    for (std::uint32_t i = 0; i < k; ++i) {
      const Vertex a = l.triangle_vertex(side, i, Corner::A);
      const Vertex b = l.triangle_vertex(side, i, Corner::B);
      const Vertex mid = l.triangle_vertex(side, i, Corner::Mid);
      g.add_edge(a, b);
      g.add_edge(b, mid);
      g.add_edge(a, mid);
      g.add_edge(a, l.special_vertex(marker_clique_size(side, Corner::A)));
      g.add_edge(b, l.special_vertex(marker_clique_size(side, Corner::B)));
      g.add_edge(mid,
                 l.special_vertex(marker_clique_size(side, Corner::Mid)));
    }
  }

  // The two top-bottom edges closing the copies of H into H_k.
  g.add_edge(l.endpoint(Side::Top, Corner::A),
             l.endpoint(Side::Bottom, Corner::A));
  g.add_edge(l.endpoint(Side::Top, Corner::B),
             l.endpoint(Side::Bottom, Corner::B));
  return out;
}

}  // namespace csd::lb
