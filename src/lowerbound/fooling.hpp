// The §4 fooling adversary — executable form of Theorem 4.1.
//
// Given a *deterministic* CONGEST algorithm that distinguishes a triangle
// from a 6-cycle, the adversary:
//
//   1. splits the namespace [N] into N_0, N_1, N_2 and executes the
//      algorithm on the triangle △(u_0, u_1, u_2) for every triple in
//      N_0 × N_1 × N_2, recording the *complete transcript* (per node, the
//      messages to its clockwise neighbor in round order, then to its
//      counter-clockwise neighbor; nodes concatenated in namespace order —
//      the unique-parsability discipline of §4);
//   2. buckets triples by transcript and takes the largest class S_t;
//   3. searches S_t — a 3-partite 3-uniform hypergraph — for the complete
//      K^(3)(2) "box" {u_0,u_0'}×{u_1,u_1'}×{u_2,u_2'} whose existence is
//      guaranteed by the Erdős box theorem (Thm 4.2) once
//      |S_t| ≥ n^{2.75};
//   4. assembles the hexagon Q = u_0 u_1 u_2 u_0' u_1' u_2', re-runs the
//      algorithm on it, verifies Claim 4.4 (every node reproduces its
//      triangle transcript) and reports whether some node wrongly rejects.
//
// With a per-node budget of C bits, at most 2^{6(C+1)} transcripts exist;
// when C = o(log N) the pigeonhole + box theorem make step 3 succeed and a
// correct algorithm is fooled. The bench sweeps C and N to exhibit the
// Θ(log N) threshold, with detect::id_exchange_triangle_program(c) as the
// algorithm family.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "congest/network.hpp"

namespace csd::lb {

struct FoolingConfig {
  /// Namespace size N (must be divisible by 3 and >= 6).
  std::uint64_t namespace_size = 24;
  /// Deterministic algorithm under attack. Must halt within max_rounds on
  /// both the triangle and the 6-cycle for any identifier assignment.
  congest::ProgramFactory algorithm;
  std::uint64_t bandwidth = 0;
  std::uint64_t max_rounds = 64;
};

struct FoolingReport {
  std::uint64_t part_size = 0;            // n = N/3
  std::uint64_t executions = 0;           // n^3 triangle runs
  std::uint64_t distinct_transcripts = 0;
  std::uint64_t largest_class = 0;
  std::uint64_t max_total_bits_per_node = 0;  // observed C
  /// Sanity: the algorithm rejected every triangle (it is "correct" on the
  /// positive side). A fooling claim is only meaningful when true.
  bool all_triangles_rejected = false;
  bool box_found = false;
  /// The fooling hexagon (u0,u1,u2,u0',u1',u2') when box_found.
  std::array<congest::NodeId, 6> hexagon{};
  /// Claim 4.4: per-node transcripts on Q equal the triangle transcripts.
  bool transcripts_match = false;
  /// Some node rejected the (triangle-free) hexagon — the algorithm is
  /// provably wrong for this identifier assignment.
  bool hexagon_fooled = false;
};

/// Run the adversary. Cost: (N/3)^3 executions of the algorithm on 3-node
/// graphs plus an O((N/3)^5 / 64) bitset box search.
FoolingReport run_fooling_adversary(const FoolingConfig& config);

/// Sampled estimate of the pigeonhole pressure behind Theorem 4.1 at
/// namespace sizes where the exhaustive (N/3)^3 enumeration is hopeless
/// (N >= 10^5). Draws `samples` uniform triples from N_0 x N_1 x N_2, runs
/// the algorithm on each triangle, and buckets the canonical transcripts
/// (by 64-bit hash — distinct transcripts colliding in the hash would
/// overcount collisions, a ~samples^2/2^64 effect, conservative for the
/// adversary). largest_class > 1 is direct evidence of transcript reuse:
/// the raw material the box search feeds on.
struct TranscriptSampleReport {
  std::uint64_t part_size = 0;       // n = N/3
  std::uint64_t samples = 0;
  std::uint64_t distinct_transcripts = 0;
  std::uint64_t largest_class = 0;
  /// Sum over transcript classes of C(|class|, 2): the number of sampled
  /// triple pairs the adversary could not tell apart.
  std::uint64_t collision_pairs = 0;
  std::uint64_t max_total_bits_per_node = 0;  // observed C
  bool all_triangles_rejected = false;
};

/// Deterministic in (config, samples, seed) at every `jobs` value: triples
/// are drawn up front from one rng stream and each execution is pure, so
/// the fan-out only changes when a run executes, never what it computes.
TranscriptSampleReport sample_transcript_collisions(const FoolingConfig& config,
                                                    std::uint64_t samples,
                                                    std::uint64_t seed,
                                                    unsigned jobs = 1);

}  // namespace csd::lb
