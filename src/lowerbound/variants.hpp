// Construction variants for the §3.4 discussion.
//
// Theorem 1.2's construction uses two rigidifiers to force embeddings of
// H_k into G_{X,Y} to respect the logical partition:
//   * the *marker cliques* (sizes 6..10) pin every vertex class, and
//   * the *triangle bodies* are non-bipartite, so they cannot fold into the
//     bipartite endpoint wiring.
// §3.4 asks what survives when the construction must be bipartite (no
// triangles — and, for a fully bipartite H, no odd cliques either). We make
// both rigidifiers switchable and machine-test, per variant, whether the
// Lemma 3.1 equivalence "H ⊆ G_{X,Y} ⟺ X ∩ Y ≠ ∅" still holds:
//
//   | body     | markers | expected                                   |
//   |----------|---------|--------------------------------------------|
//   | triangle | yes     | holds (the paper's construction)           |
//   | path     | yes     | holds at small scale: markers rigidify     |
//   | triangle | no      | holds: triangles rigidify                  |
//   | path     | no      | FAILS: H folds (e.g. a C_{4k+6}-style cycle|
//   |          |         | closed by two same-side input edges)       |
//
// The "path body" replaces each triangle (A, B, Mid) by the path
// A — Mid — B (the A–B edge dropped); this is exactly the bipartite body
// §3.4 must replace by an involved gadget.
#pragma once

#include <cstdint>

#include "comm/disjointness.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/hk.hpp"

namespace csd::lb {

struct ConstructionVariant {
  /// Keep the body triangles' A–B edges (false = bipartite path bodies).
  bool triangle_body = true;
  /// Keep the five marker cliques and their attachments.
  bool markers = true;
};

/// H_k with the given variant applied (layout indices are unchanged; with
/// markers disabled the clique vertices remain as isolated padding so all
/// class indices stay valid).
HkGraph build_hk_variant(std::uint32_t k, const ConstructionVariant& v);

/// G_{X,Y} with the given variant applied (same convention).
GknGraph build_gxy_variant(std::uint32_t k, std::uint32_t n,
                           const comm::DisjointnessInstance& inst,
                           const ConstructionVariant& v);

/// When markers are disabled the isolated clique vertices would make VF2
/// trivially embed them anywhere; this strips isolated vertices from a
/// graph for fair containment testing.
Graph strip_isolated(const Graph& g);

}  // namespace csd::lb
