#include "lowerbound/oneround.hpp"

#include <algorithm>

#include "congest/run_batch.hpp"
#include "info/entropy.hpp"
#include "support/bits.hpp"
#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::lb {

namespace {

/// Stable mixing hash for (value, salt).
std::uint64_t mix(std::uint64_t value, std::uint64_t salt) {
  std::uint64_t s = value ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// Edge-index mapping used by GtSample::special_edge: the edge between
/// specials s and t (s != t).
std::uint32_t edge_index(std::uint32_t s, std::uint32_t t) {
  const std::uint32_t lo = std::min(s, t), hi = std::max(s, t);
  if (lo == 0 && hi == 1) return 0;  // ab
  if (lo == 1 && hi == 2) return 1;  // bc
  return 2;                          // ac
}

}  // namespace

GtSample sample_gt(std::uint64_t n, Rng& rng) {
  CSD_CHECK(n >= 1);
  GtSample sample;
  sample.n = n;
  const std::uint64_t id_space =
      std::max<std::uint64_t>(27, n * n * n);  // [n³] as in the paper
  for (auto& id : sample.special_id) id = rng.below(id_space);
  for (auto& bit : sample.special_edge) bit = rng.coin();

  for (std::uint32_t s = 0; s < 3; ++s) {
    SpecialInput& input = sample.input[s];
    input.own_id = sample.special_id[s];
    // Unpermuted layout: slots 0,1 = the other two specials, then n spokes.
    std::vector<std::uint64_t> ids;
    std::vector<bool> present;
    for (std::uint32_t t = 0; t < 3; ++t) {
      if (t == s) continue;
      ids.push_back(sample.special_id[t]);
      present.push_back(sample.special_edge[edge_index(s, t)]);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      ids.push_back(rng.below(id_space));
      present.push_back(rng.coin());
    }
    // Random permutation hides which slots are special (π_s of §5).
    const auto perm = rng.permutation(static_cast<std::uint32_t>(n + 2));
    input.neighbor_ids.resize(n + 2);
    input.present = BitVec(n + 2);
    for (std::uint32_t slot = 0; slot < n + 2; ++slot) {
      input.neighbor_ids[slot] = ids[perm[slot]];
      input.present.set(slot, present[perm[slot]]);
    }
  }
  return sample;
}

GtSample sample_gt_fast(std::uint64_t n, Rng& rng) {
  CSD_CHECK(n >= 1);
  GtSample sample;
  sample.n = n;
  const std::uint64_t id_space =
      std::max<std::uint64_t>(27, n * n * n);  // [n³] as in the paper
  for (auto& id : sample.special_id) id = rng.below(id_space);
  for (auto& bit : sample.special_edge) bit = rng.coin();

  for (std::uint32_t s = 0; s < 3; ++s) {
    SpecialInput& input = sample.input[s];
    input.own_id = sample.special_id[s];
    input.neighbor_ids.resize(n + 2);
    // Unpermuted layout: slots 0,1 = the other two specials, then n spokes.
    // Skipping π_s is sound only for permutation-invariant protocols — the
    // callers CHECK that before routing here.
    std::uint32_t w = 0;
    std::uint64_t special_bits = 0;
    for (std::uint32_t t = 0; t < 3; ++t) {
      if (t == s) continue;
      input.neighbor_ids[w] = sample.special_id[t];
      if (sample.special_edge[edge_index(s, t)]) special_bits |= 1ULL << w;
      ++w;
    }
    for (std::uint64_t i = 0; i < n; ++i)
      input.neighbor_ids[2 + i] = rng.below(id_space);
    // Spoke presence 64 bits per draw instead of one coin() each.
    BitVec present;
    present.append_bits(special_bits, 2);
    std::uint64_t remaining = n;
    while (remaining > 0) {
      const unsigned chunk =
          remaining > 64 ? 64u : static_cast<unsigned>(remaining);
      present.append_bits(rng(), chunk);
      remaining -= chunk;
    }
    input.present = std::move(present);
  }
  return sample;
}

namespace {

// ------------------------------------------------------------------ Bloom
class BloomProtocol final : public OneRoundProtocol {
 public:
  explicit BloomProtocol(std::uint64_t salt) : salt_(salt) {}
  std::string name() const override { return "bloom"; }

  BitVec message(const SpecialInput& input, std::uint64_t bandwidth,
                 Rng&) const override {
    CSD_CHECK(bandwidth >= 1);
    BitVec filter(bandwidth);
    // Word-parallel scan: present slots are typically half the slots, and
    // for_each_set skips absent runs 64 at a time.
    for_each_set(input.present, [&](std::size_t slot) {
      filter.set(mix(input.neighbor_ids[slot], salt_) % bandwidth);
    });
    return filter;
  }

  bool rejects(const GtSample& sample, std::uint32_t self_index,
               const BitVec* msg_from_first, const BitVec* msg_from_second,
               std::uint64_t bandwidth) const override {
    // Both incident special edges must be present (otherwise no triangle
    // through this node and at least one message is missing anyway).
    if (msg_from_first == nullptr || msg_from_second == nullptr) return false;
    // The senders' identities are known on receipt; each filter is queried
    // for the *other* sender's id. AND keeps the protocol free of false
    // negatives (Bloom filters have none) while squaring the FP rate.
    std::uint32_t others[2];
    std::uint32_t w = 0;
    for (std::uint32_t t = 0; t < 3; ++t)
      if (t != self_index) others[w++] = t;
    const std::uint64_t id_first = sample.special_id[others[0]];
    const std::uint64_t id_second = sample.special_id[others[1]];
    const bool first_says =
        msg_from_first->get(mix(id_second, salt_) % bandwidth);
    const bool second_says =
        msg_from_second->get(mix(id_first, salt_) % bandwidth);
    return first_says && second_says;
  }

  // Message = Bloom filter of the present-id *set*; decision = membership
  // queries by id. Slot labels never enter either.
  bool permutation_invariant() const override { return true; }

 private:
  std::uint64_t salt_;
};

// -------------------------------------------------------------- IdSample
class IdSampleProtocol final : public OneRoundProtocol {
 public:
  explicit IdSampleProtocol(std::uint64_t salt) : salt_(salt) {}
  std::string name() const override { return "id-sample"; }

  static std::uint32_t id_bits(const SpecialInput& input) {
    std::uint64_t max_id = 1;
    for (const auto id : input.neighbor_ids)
      max_id = std::max(max_id, id + 1);
    return wire::bits_for(max_id);
  }

  BitVec message(const SpecialInput& input, std::uint64_t bandwidth,
                 Rng& rng) const override {
    const std::uint32_t bits = 64;  // fixed-width ids keep decoding trivial
    const std::uint64_t record = bits + 1;
    const auto capacity = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        bandwidth / record, input.neighbor_ids.size()));
    const auto chosen = rng.sample_without_replacement(
        static_cast<std::uint32_t>(input.neighbor_ids.size()), capacity);
    wire::Writer w;
    for (const auto slot : chosen) {
      w.u(input.neighbor_ids[slot], bits);
      w.boolean(input.present.get(slot));
    }
    return std::move(w).take();
  }

  bool rejects(const GtSample& sample, std::uint32_t self_index,
               const BitVec* msg_from_first, const BitVec* msg_from_second,
               std::uint64_t) const override {
    if (msg_from_first == nullptr || msg_from_second == nullptr) return false;
    std::uint32_t others[2];
    std::uint32_t w = 0;
    for (std::uint32_t t = 0; t < 3; ++t)
      if (t != self_index) others[w++] = t;
    // Look for an explicit record about the third edge in either message.
    const auto lookup = [](const BitVec& msg,
                           std::uint64_t wanted) -> int {
      wire::Reader r(msg);
      while (r.remaining() >= 65) {
        const std::uint64_t id = r.u(64);
        const bool present = r.boolean();
        if (id == wanted) return present ? 1 : 0;
      }
      return -1;
    };
    const int from_first =
        lookup(*msg_from_first, sample.special_id[others[1]]);
    if (from_first >= 0) return from_first == 1;
    const int from_second =
        lookup(*msg_from_second, sample.special_id[others[0]]);
    if (from_second >= 0) return from_second == 1;
    return false;  // no evidence: accept
  }

  // Records are (id, presence) pairs for a uniformly random slot subset —
  // the subset law is the same under any slot relabeling — and lookups go
  // by id.
  bool permutation_invariant() const override { return true; }

 private:
  std::uint64_t salt_;
};

}  // namespace

std::unique_ptr<OneRoundProtocol> make_bloom_protocol(std::uint64_t salt) {
  return std::make_unique<BloomProtocol>(salt);
}

std::unique_ptr<OneRoundProtocol> make_id_sample_protocol(std::uint64_t salt) {
  return std::make_unique<IdSampleProtocol>(salt);
}

OneRoundStats evaluate_interactive(std::uint64_t n, std::uint64_t bandwidth,
                                   std::uint64_t samples,
                                   std::uint64_t seed) {
  OneRoundStats stats;
  stats.n = n;
  stats.bandwidth = bandwidth;
  stats.samples = samples;
  const std::uint64_t id_space = std::max<std::uint64_t>(27, n * n * n);
  const unsigned id_bits = wire::bits_for(id_space);

  Rng rng(derive_seed(seed, 0x17ac7));
  std::uint64_t wrong = 0, fn = 0, fp = 0, positives = 0, negatives = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const GtSample sample = sample_gt(n, rng);
    // Round 1 costs 1 bit; rounds 2/3 need an id + answer bit. A node can
    // only follow the protocol if the query fits the bandwidth.
    const bool fits = bandwidth >= id_bits + 1;
    bool rejected = false;
    if (fits) {
      // v_a asks only if both its special edges are present (otherwise no
      // triangle through v_a; v_b/v_c run symmetric logic — one asker
      // suffices because a triangle needs all three edges present).
      if (sample.special_edge[0] && sample.special_edge[2]) {
        // v_b truthfully reports X_bc.
        rejected = sample.special_edge[1];
      }
    }
    const bool truth = sample.has_triangle();
    if (rejected != truth) ++wrong;
    if (truth) {
      ++positives;
      fn += !rejected;
    } else {
      ++negatives;
      fp += rejected;
    }
  }
  const double total = static_cast<double>(samples);
  stats.error = static_cast<double>(wrong) / total;
  stats.false_negative =
      positives == 0 ? 0
                     : static_cast<double>(fn) / static_cast<double>(positives);
  stats.false_positive =
      negatives == 0 ? 0
                     : static_cast<double>(fp) / static_cast<double>(negatives);
  return stats;
}

namespace {

OneRoundStats evaluate_one_round_impl(const OneRoundProtocol& protocol,
                                      std::uint64_t n, std::uint64_t bandwidth,
                                      std::uint64_t samples,
                                      std::uint64_t seed, bool fast) {
  OneRoundStats stats;
  stats.n = n;
  stats.bandwidth = bandwidth;
  stats.samples = samples;

  // The fast path is a distinct estimator (different sampler, different
  // stream id); the slow path's stream is the historic one, so existing
  // per-seed results replay bit-for-bit.
  Rng rng(derive_seed(seed, fast ? 0xfa57 : 0xa11c4));
  std::uint64_t wrong = 0, fn = 0, fp = 0, positives = 0, negatives = 0;
  // Conditional-on-X_ab=X_ac=1 information accumulators (Lemma 5.3/5.4):
  // the Lemma 5.4 decomposition sums per-message informations.
  info::JointDistribution msg_ba, msg_ca, accept_joint;
  info::JointDistribution msg_ba_null, msg_ca_null;
  // Size the count tables once for the batch: the conditioning event has
  // probability 1/4, message hashes are the only big alphabet. Hints never
  // change a result (summation order is canonical).
  const auto msg_hint = static_cast<std::size_t>(samples / 4 + 8);
  msg_ba.reserve(2, msg_hint);
  msg_ca.reserve(2, msg_hint);
  accept_joint.reserve(2, 2);
  msg_ba_null.reserve(2, msg_hint);
  msg_ca_null.reserve(2, msg_hint);

  for (std::uint64_t i = 0; i < samples; ++i) {
    const GtSample sample =
        fast ? sample_gt_fast(n, rng) : sample_gt(n, rng);
    BitVec msgs[3];
    for (std::uint32_t s = 0; s < 3; ++s)
      msgs[s] = protocol.message(sample.input[s], bandwidth, rng);

    bool node_rejects[3];
    for (std::uint32_t s = 0; s < 3; ++s) {
      std::uint32_t others[2];
      std::uint32_t w = 0;
      for (std::uint32_t t = 0; t < 3; ++t)
        if (t != s) others[w++] = t;
      const BitVec* first =
          sample.special_edge[edge_index(s, others[0])] ? &msgs[others[0]]
                                                        : nullptr;
      const BitVec* second =
          sample.special_edge[edge_index(s, others[1])] ? &msgs[others[1]]
                                                        : nullptr;
      node_rejects[s] = protocol.rejects(sample, s, first, second, bandwidth);
    }
    const bool rejected = node_rejects[0] || node_rejects[1] || node_rejects[2];
    const bool truth = sample.has_triangle();
    if (rejected != truth) ++wrong;
    if (truth) {
      ++positives;
      if (!rejected) ++fn;
    } else {
      ++negatives;
      if (rejected) ++fp;
    }

    // Information proxies at node a, conditioned on X_ab = X_ac = 1.
    if (sample.special_edge[edge_index(0, 1)] &&
        sample.special_edge[edge_index(0, 2)]) {
      const std::uint64_t x_bc = sample.special_edge[edge_index(1, 2)];
      msg_ba.add(x_bc, msgs[1].hash());
      msg_ca.add(x_bc, msgs[2].hash());
      accept_joint.add(x_bc, node_rejects[0] ? 1 : 0);
      // Shuffle control: an independent coin carries zero information, so
      // whatever the estimator reports here is finite-sample bias.
      const std::uint64_t coin = rng.coin();
      msg_ba_null.add(coin, msgs[1].hash());
      msg_ca_null.add(coin, msgs[2].hash());
    }
  }

  const double total = static_cast<double>(samples);
  stats.error = static_cast<double>(wrong) / total;
  stats.false_negative =
      positives == 0 ? 0 : static_cast<double>(fn) / static_cast<double>(positives);
  stats.false_positive =
      negatives == 0 ? 0 : static_cast<double>(fp) / static_cast<double>(negatives);
  stats.info_messages =
      msg_ba.mutual_information() + msg_ca.mutual_information();
  stats.info_messages_null =
      msg_ba_null.mutual_information() + msg_ca_null.mutual_information();
  stats.info_accept = accept_joint.mutual_information();
  stats.info_messages_raw =
      msg_ba.mutual_information_raw() + msg_ca.mutual_information_raw();
  stats.info_messages_null_raw = msg_ba_null.mutual_information_raw() +
                                 msg_ca_null.mutual_information_raw();
  return stats;
}

}  // namespace

OneRoundStats evaluate_one_round(const OneRoundProtocol& protocol,
                                 std::uint64_t n, std::uint64_t bandwidth,
                                 std::uint64_t samples, std::uint64_t seed) {
  return evaluate_one_round_impl(protocol, n, bandwidth, samples, seed,
                                 /*fast=*/false);
}

std::vector<OneRoundStats> evaluate_one_round_batch(
    const OneRoundProtocol& protocol, std::uint64_t n, std::uint64_t bandwidth,
    std::uint64_t samples, const std::vector<std::uint64_t>& seeds,
    const OneRoundBatchOptions& options) {
  CSD_CHECK_MSG(!options.fast_sampling || protocol.permutation_invariant(),
                "fast_sampling requires a permutation-invariant protocol");
  std::vector<OneRoundStats> rows(seeds.size());
  const congest::RunBatch batch(options.jobs);
  batch.for_each_index(seeds.size(), [&](std::size_t i) {
    rows[i] = evaluate_one_round_impl(protocol, n, bandwidth, samples,
                                      seeds[i], options.fast_sampling);
  });
  return rows;
}

OneRoundStats evaluate_interactive_sliced(std::uint64_t n,
                                          std::uint64_t bandwidth,
                                          std::uint64_t samples,
                                          std::uint64_t seed) {
  OneRoundStats stats;
  stats.n = n;
  stats.bandwidth = bandwidth;
  stats.samples = samples;
  const std::uint64_t id_space = std::max<std::uint64_t>(27, n * n * n);
  const unsigned id_bits = wire::bits_for(id_space);
  const bool fits = bandwidth >= id_bits + 1;

  // The decision and the truth are functions of (X_ab, X_bc, X_ac) only,
  // and those are independent of the ids and spokes — so each edge variable
  // becomes one lane word per 64 samples and nothing else is drawn.
  Rng rng(derive_seed(seed, 0x51ced));
  std::uint64_t wrong = 0, fn = 0, fp = 0, positives = 0, negatives = 0;
  for (std::uint64_t done = 0; done < samples; done += 64) {
    const std::uint64_t lanes = std::min<std::uint64_t>(64, samples - done);
    const std::uint64_t mask = lanes == 64 ? ~0ULL : (1ULL << lanes) - 1;
    const std::uint64_t ab = rng() & mask;
    const std::uint64_t bc = rng() & mask;
    const std::uint64_t ac = rng() & mask;
    // v_a asks iff both its edges are present; v_b answers X_bc truthfully.
    const std::uint64_t rejected = fits ? (ab & ac & bc) : 0;
    const std::uint64_t truth = ab & bc & ac;
    wrong += static_cast<std::uint64_t>(popcount64(rejected ^ truth));
    const auto pos = static_cast<std::uint64_t>(popcount64(truth));
    positives += pos;
    negatives += lanes - pos;
    fn += static_cast<std::uint64_t>(popcount64(truth & ~rejected));
    fp += static_cast<std::uint64_t>(popcount64(rejected & ~truth));
  }
  const double total = static_cast<double>(samples);
  stats.error = static_cast<double>(wrong) / total;
  stats.false_negative =
      positives == 0 ? 0
                     : static_cast<double>(fn) / static_cast<double>(positives);
  stats.false_positive =
      negatives == 0 ? 0
                     : static_cast<double>(fp) / static_cast<double>(negatives);
  return stats;
}

}  // namespace csd::lb
