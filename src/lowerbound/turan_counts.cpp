#include "lowerbound/turan_counts.hpp"

#include <cmath>

#include "graph/oracle.hpp"
#include "support/check.hpp"

namespace csd::lb {

CliqueCountReport check_clique_count_bound(const Graph& g, std::uint32_t s,
                                           const std::string& family) {
  CSD_CHECK_MSG(s >= 2, "Lemma 1.3 concerns s >= 2");
  CliqueCountReport report;
  report.family = family;
  report.n = g.num_vertices();
  report.m = g.num_edges();
  report.s = s;
  report.clique_count = oracle::count_cliques(g, s);
  report.bound = std::pow(static_cast<double>(report.m),
                          static_cast<double>(s) / 2.0);
  report.ratio = report.bound == 0
                     ? 0
                     : static_cast<double>(report.clique_count) / report.bound;
  return report;
}

double clique_host_limit_ratio(std::uint32_t s) {
  // K_t: m = t(t-1)/2 ≈ t²/2, #K_s = C(t,s) ≈ t^s/s!; ratio → 2^{s/2}/s!.
  double factorial = 1;
  for (std::uint32_t i = 2; i <= s; ++i) factorial *= i;
  return std::pow(2.0, static_cast<double>(s) / 2.0) / factorial;
}

}  // namespace csd::lb
