// The §5 template-graph experiment — executable form of Theorem 5.1.
//
// Input distribution μ: three special nodes v_a, v_b, v_c, each with n
// non-special potential neighbors (template graph G_T, Figure 3); every
// edge of G_T appears iid with probability 1/2; identifiers are drawn
// uniformly from [n³] and each special node sees its potential-neighbor
// identifiers in a random order together with the presence bit-vector, so
// it cannot tell a-priori which neighbors are special. A triangle exists
// iff X_ab ∧ X_bc ∧ X_ac.
//
// A one-round protocol chooses a B-bit message per special node as a
// function of its own input only, then each node decides from its input and
// the messages of its *present* special neighbors. Theorem 5.1: any such
// protocol with constant error needs B = Ω(n).
//
// We implement the upper-bound side with two concrete protocol families and
// measure, as functions of B:
//   * the distributional error under μ — which stays near the trivial 1/8
//     until B ≈ n (Bloom sketch) or B ≈ n log n (explicit id samples),
//     exhibiting both the Ω(Δ) bound and the open log-factor gap the paper
//     discusses;
//   * empirical information proxies for Lemma 5.3/5.4:
//     I(X_bc ; M_ba, M_ca | X_ab = X_ac = 1) and
//     I(X_bc ; acc_a | X_ab = X_ac = 1) (plug-in estimators; conditioning
//     on the full input N_a is replaced by averaging over it, which can
//     only *increase* measured information per Lemma 5.4's decomposition —
//     the conservative direction for checking that little is learned).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/bitvec.hpp"
#include "support/rng.hpp"

namespace csd::lb {

/// One special node's view of a μ-sample (after permutation): parallel
/// arrays of potential-neighbor identifiers and presence bits, plus its own
/// identifier. Slots n and beyond the permutation hide which two entries
/// are the other special nodes.
struct SpecialInput {
  std::vector<std::uint64_t> neighbor_ids;  // n + 2 entries, permuted
  BitVec present;                           // same order
  std::uint64_t own_id = 0;
};

/// A full μ-sample.
struct GtSample {
  std::uint64_t n = 0;
  SpecialInput input[3];          // a, b, c
  bool special_edge[3] = {};      // X_ab, X_bc, X_ac (indices: ab, bc, ac)
  std::uint64_t special_id[3] = {};

  bool has_triangle() const {
    return special_edge[0] && special_edge[1] && special_edge[2];
  }
};

/// Draw one sample of μ with the given spoke count n.
GtSample sample_gt(std::uint64_t n, Rng& rng);

/// Permutation-free sampler for protocols that are permutation-invariant
/// (see OneRoundProtocol::permutation_invariant): the hiding permutation π_s
/// is skipped (specials sit in slots 0 and 1) and spoke presence bits are
/// filled 64 per rng word instead of one coin each. The marginal law of
/// every protocol-visible statistic is exactly μ for such protocols, but
/// the rng stream differs from sample_gt — estimates drawn through this
/// path are a different (equally distributed) Monte-Carlo estimator, not a
/// bit-identical replay.
GtSample sample_gt_fast(std::uint64_t n, Rng& rng);

/// One-round protocol interface. Messages may depend only on the sender's
/// own input (and private randomness); the decision of node s sees its own
/// input plus the messages of the two other specials gated by edge
/// presence (absent edge ⇒ no message, conveyed as std::nullopt-like empty).
class OneRoundProtocol {
 public:
  virtual ~OneRoundProtocol() = default;
  virtual std::string name() const = 0;

  /// Compose the B-bit message of a special node.
  virtual BitVec message(const SpecialInput& input, std::uint64_t bandwidth,
                         Rng& rng) const = 0;

  /// Decision of special node `self_index` (0=a,1=b,2=c): true = reject
  /// ("triangle present"). `msg[t]` is the message of special t, or nullptr
  /// if the edge {self, t} is absent (no link, no message).
  virtual bool rejects(const GtSample& sample, std::uint32_t self_index,
                       const BitVec* msg_from_first,
                       const BitVec* msg_from_second,
                       std::uint64_t bandwidth) const = 0;

  /// True iff message() and rejects() depend on the input only through the
  /// multiset of (neighbor id, presence) pairs and the special ids — i.e.
  /// relabeling slots cannot change any protocol-visible distribution. Such
  /// protocols may be evaluated through sample_gt_fast, which skips the
  /// hiding permutation. Defaults to false (the conservative answer).
  virtual bool permutation_invariant() const { return false; }
};

/// Bloom-sketch protocol: B-bit Bloom filter of the present-neighbor id set;
/// the receiver tests the third special's id. Error → 0 once B = Θ(n):
/// matches the Ω(Δ) bound up to constants.
std::unique_ptr<OneRoundProtocol> make_bloom_protocol(std::uint64_t salt);

/// Explicit-sample protocol: as many (id, presence) records as fit in B
/// bits, chosen for a random subset of neighbors. Needs B = Θ(n log n):
/// exhibits the log-factor discussed in §1.1.
std::unique_ptr<OneRoundProtocol> make_id_sample_protocol(std::uint64_t salt);

struct OneRoundStats {
  std::uint64_t n = 0;
  std::uint64_t bandwidth = 0;
  std::uint64_t samples = 0;
  double error = 0;                  // distributional error under μ
  double false_negative = 0;         // P(accept | triangle)
  double false_positive = 0;         // P(reject | no triangle)
  double info_messages = 0;          // I(X_bc ; M_ba,M_ca | X_ab=X_ac=1)
  double info_accept = 0;            // I(X_bc ; acc_a   | X_ab=X_ac=1)
  /// Same plug-in estimate with X_bc replaced by an independent coin: pure
  /// finite-sample bias. info_messages - info_messages_null is the
  /// bias-corrected value (shuffle control).
  double info_messages_null = 0;
  /// Unclamped counterparts (JointDistribution::mutual_information_raw):
  /// negative values are finite-sample bias the clamped fields hide — the
  /// bootstrap fits consume these so the bias is visible, not truncated.
  double info_messages_raw = 0;
  double info_messages_null_raw = 0;
};

/// Monte-Carlo evaluation of a protocol at (n, B).
OneRoundStats evaluate_one_round(const OneRoundProtocol& protocol,
                                 std::uint64_t n, std::uint64_t bandwidth,
                                 std::uint64_t samples, std::uint64_t seed);

struct OneRoundBatchOptions {
  /// Worker threads fanning seeds across a congest::RunBatch; results are
  /// bit-identical at every value (each seed's evaluation is pure).
  unsigned jobs = 1;
  /// Sample through sample_gt_fast. Requires permutation_invariant();
  /// changes the rng stream (see sample_gt_fast), so it is an explicit
  /// opt-in — the default keeps every row bit-identical to a sequential
  /// evaluate_one_round call with the same seed.
  bool fast_sampling = false;
};

/// One evaluate_one_round per seed over a shared protocol, fanned across
/// `options.jobs` workers. Row i is the run with seeds[i]; with default
/// options each row is bit-for-bit the sequential evaluate_one_round
/// result. The per-seed rows are what the bootstrap fits resample.
std::vector<OneRoundStats> evaluate_one_round_batch(
    const OneRoundProtocol& protocol, std::uint64_t n, std::uint64_t bandwidth,
    std::uint64_t samples, const std::vector<std::uint64_t>& seeds,
    const OneRoundBatchOptions& options = {});

/// The contrast that makes Theorem 5.1 a *one-round* bound: with three
/// rounds, O(log n) bits per edge suffice. Round 1: every special node
/// flags itself (1 bit); round 2: v_a, now knowing which present neighbors
/// are special, asks v_b about u_c by id (3·log n bits); round 3: v_b
/// answers X_bc (1 bit). Exact whenever B >= 3·⌈log2 n³⌉; the bench
/// contrasts its error curve with the one-round protocols'.
OneRoundStats evaluate_interactive(std::uint64_t n, std::uint64_t bandwidth,
                                   std::uint64_t samples, std::uint64_t seed);

/// Word-sliced variant for the n >= 10^5 sweeps: the interactive decision
/// and the ground truth depend only on the three special-edge bits, which
/// are independent of the ids and spokes — so 64 samples are processed per
/// three rng words (one word per edge variable) with ~6 word ops, never
/// materializing a GtSample. Error statistics have exactly the μ law;
/// the rng stream differs from evaluate_interactive (its own stream id),
/// and the info_* fields stay 0 (the interactive path never fills them).
OneRoundStats evaluate_interactive_sliced(std::uint64_t n,
                                          std::uint64_t bandwidth,
                                          std::uint64_t samples,
                                          std::uint64_t seed);

}  // namespace csd::lb
