#include "fuzz/fuzzer.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "congest/network.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::fuzz {

namespace {

/// Ground truth + fault-free amplified verdict, computed directly (not via
/// check_case: a diverging case may bail before the oracle fills these).
CaseExpectation expectation(const FuzzCase& c) {
  const Graph host = build_graph(c);
  CaseExpectation expect;
  expect.truth = contains_subgraph(host, pattern_graph(c));
  congest::NetworkConfig cfg;
  cfg.bandwidth = effective_bandwidth(c, host);
  cfg.max_rounds = round_budget(c, host, cfg.bandwidth);
  cfg.seed = c.seed;
  congest::AmplifyOptions full;
  full.jobs = 1;
  full.early_exit = false;
  expect.detected =
      run_amplified(host, cfg, make_program(c), c.repetitions, full).detected;
  return expect;
}

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, value >>= 4) s[static_cast<std::size_t>(i)] =
      kDigits[value & 0xf];
  return s;
}

}  // namespace

obs::Json corpus_entry(const FuzzCase& c, const Divergence& divergence) {
  const CaseExpectation expect = expectation(c);
  obs::Json doc = obs::Json::object();
  doc.set("schema", "csd-fuzz-case-v1");
  obs::Json found = obs::Json::object();
  found.set("check", divergence.check);
  found.set("detail", divergence.detail);
  doc.set("found", std::move(found));
  doc.set("case", to_json(c));
  obs::Json exp = obs::Json::object();
  exp.set("truth", expect.truth);
  exp.set("detected", expect.detected);
  doc.set("expect", std::move(exp));
  return doc;
}

FuzzCase corpus_case(const obs::Json& doc, CaseExpectation* expect,
                     Divergence* divergence) {
  CSD_CHECK_MSG(doc.at("schema").as_string() == "csd-fuzz-case-v1",
                "unknown corpus schema '" << doc.at("schema").as_string()
                                          << "'");
  if (expect) {
    expect->truth = doc.at("expect").at("truth").as_bool();
    expect->detected = doc.at("expect").at("detected").as_bool();
  }
  if (divergence) {
    divergence->check = doc.at("found").at("check").as_string();
    divergence->detail = doc.at("found").at("detail").as_string();
  }
  return case_from_json(doc.at("case"));
}

FuzzReport run_fuzzer(const FuzzOptions& options, std::ostream& log) {
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (options.seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.seconds;
  };

  FuzzReport report;
  log << "fuzz: seed " << options.seed << ", budget "
      << (options.seconds > 0.0 ? options.seconds : 0.0) << "s"
      << (options.max_cases ? ", max " : "")
      << (options.max_cases ? std::to_string(options.max_cases) + " cases"
                            : std::string{})
      << '\n';

  for (std::uint64_t i = 0;; ++i) {
    if (options.max_cases && i >= options.max_cases) break;
    if (out_of_time()) break;
    const std::uint64_t case_seed = derive_seed(options.seed, i);
    const FuzzCase c = generate_case(case_seed);
    ++report.cases;
    const auto divergence = check_case(c);
    if (!divergence) continue;

    log << "fuzz: case " << i << " (seed " << case_seed << ") diverged: "
        << divergence->check << " — " << divergence->detail << '\n';

    // Shrink, pinned to the same check so minimization cannot wander to a
    // different bug than the one being reported.
    const std::string check = divergence->check;
    Divergence last = *divergence;
    const CasePredicate still_fails = [&](const FuzzCase& candidate) {
      const auto d = check_case(candidate);
      if (!d || d->check != check) return false;
      last = *d;
      return true;
    };
    const FuzzCase shrunk = shrink_case(c, still_fails, options.shrink_evals);
    log << "fuzz: shrunk to " << shrunk.num_vertices << " vertices, "
        << shrunk.edges.size() << " edges, " << shrunk.repetitions
        << " repetition(s)\n";

    FuzzFailure failure;
    failure.case_seed = case_seed;
    failure.divergence = last;
    failure.shrunk = shrunk;
    if (!options.corpus_dir.empty()) {
      std::filesystem::create_directories(options.corpus_dir);
      const std::filesystem::path path =
          std::filesystem::path(options.corpus_dir) /
          (check + "-" + hex64(case_seed) + ".json");
      std::ofstream os(path);
      CSD_CHECK_MSG(os.good(), "cannot write corpus file '" << path.string()
                                                            << "'");
      corpus_entry(shrunk, last).write(os);
      os << '\n';
      failure.file = path.string();
      log << "fuzz: wrote " << failure.file << '\n';
    }
    report.failures.push_back(std::move(failure));
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  log << "fuzz: " << report.cases << " cases in " << elapsed.count()
      << "s, " << report.failures.size() << " divergence(s)\n";
  return report;
}

}  // namespace csd::fuzz
