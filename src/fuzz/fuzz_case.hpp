// One differential-fuzzing test case: everything needed to reproduce a run
// bit-for-bit across every engine.
//
// A FuzzCase pins down the four independent axes of a simulator execution:
//   * the host graph (explicit edge list — no generator state, so a case
//     replays identically after the generator's distribution changes),
//   * the detection program (family + parameter + amplification count),
//   * the fault plan (drop/corrupt probabilities, header corruption,
//     scheduled crashes — applied to the async engines),
//   * the schedule (run seed and the async engine's delay bound).
// Cases serialize to the insertion-ordered obs::Json model, so a corpus
// file is byte-stable and diffs cleanly; parsing is strict (unknown
// program names or malformed edges throw CheckFailure, never misload).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "congest/faults.hpp"
#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "obs/json.hpp"

namespace csd::fuzz {

/// Which detection program the case runs. Clique is the deterministic
/// detector (verdict must equal ground truth); the rest are one-sided
/// randomized algorithms (Reject certifies a real copy).
enum class ProgramKind : std::uint8_t {
  Clique,          ///< K_s neighborhood exchange; param = s >= 3.
  EvenCycle,       ///< Theorem 1.1 C_2k detector; param = 2k (even, >= 4).
  PipelinedCycle,  ///< folklore pipelined C_L; param = L >= 3.
  Tree,            ///< color-coding tree DP; param = tree_catalog index.
};

const char* to_string(ProgramKind kind) noexcept;

/// Small fixed catalog of tree patterns for ProgramKind::Tree (all rooted
/// at vertex 0, as tree_detect requires). Indexed by FuzzCase::param.
std::size_t tree_catalog_size() noexcept;
Graph tree_catalog(std::size_t index);

struct FuzzCase {
  // -- host graph -----------------------------------------------------------
  std::uint32_t num_vertices = 3;
  /// Undirected edges (u, v) with u < v, sorted — the canonical form
  /// Graph::edges() returns, so JSON round-trips are byte-stable.
  std::vector<std::pair<Vertex, Vertex>> edges;

  // -- detection program ----------------------------------------------------
  ProgramKind program = ProgramKind::Clique;
  std::uint32_t param = 3;
  /// Amplification repetitions (forced to 1 for the deterministic clique).
  std::uint32_t repetitions = 1;
  /// Per-edge bandwidth; 0 = use the program's minimum. Values below the
  /// minimum are clamped up by effective_bandwidth (the programs CHECK).
  std::uint64_t bandwidth = 0;

  // -- schedule -------------------------------------------------------------
  std::uint64_t seed = 1;
  /// Async link-delay bound (frames draw delays in [1, max_delay]).
  std::uint32_t max_delay = 4;

  // -- fault plan (async engines; drop/corrupt also apply to sync) ----------
  double drop = 0.0;
  double corrupt = 0.0;
  bool corrupt_headers = false;
  std::vector<congest::CrashEvent> crashes;

  bool has_faults() const noexcept {
    return drop > 0.0 || corrupt > 0.0 || !crashes.empty();
  }

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

/// Materialize the host graph (sorted adjacency, deterministic iteration).
Graph build_graph(const FuzzCase& c);

/// The pattern the case's program searches for (K_s, C_L, or the catalog
/// tree) — the VF2 ground-truth target.
Graph pattern_graph(const FuzzCase& c);

/// Program factory for one repetition of the case's algorithm.
congest::ProgramFactory make_program(const FuzzCase& c);

/// max(c.bandwidth, the program's minimum on this host size).
std::uint64_t effective_bandwidth(const FuzzCase& c, const Graph& host);

/// Round/pulse budget a single repetition needs (mirrors the CLI: the
/// program's own budget helper plus slack).
std::uint64_t round_budget(const FuzzCase& c, const Graph& host,
                           std::uint64_t bandwidth);

/// The case's FaultPlan (drop/corrupt/corrupt_headers/crashes).
congest::FaultPlan fault_plan(const FuzzCase& c);

obs::Json to_json(const FuzzCase& c);
FuzzCase case_from_json(const obs::Json& j);

}  // namespace csd::fuzz
