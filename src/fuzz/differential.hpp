// Differential oracle for one fuzz case.
//
// check_case runs the case through every engine the repo has — the
// synchronous Network, the async engine under both wire disciplines, and
// the run_amplified parallel driver at several --jobs counts — and
// cross-checks every invariant the engines advertise:
//
//   * ground truth: the VF2 monomorphism oracle must agree with the
//     family-specific oracle (has_clique / has_cycle_of_length / has_tree);
//   * fault-free equivalence: per repetition, sync == async-raw ==
//     async-reliable on completion, verdicts, payload bits, rounds/pulses,
//     and the per-round JSONL trace, byte for byte;
//   * accounting: async overhead_bits must equal an *independently
//     restated* per-frame constant (64-bit pulse + 2 flags) times the frame
//     count, and the fault-free reliable transport must charge exactly
//     (seq + crc) per data packet and per ack with acks == frames and zero
//     retransmissions — so an accounting regression in the engine is caught
//     against this file, not against itself;
//   * one-sided error: a fault-free Reject certifies a real copy; the
//     deterministic clique detector must match ground truth exactly;
//   * driver determinism: run_amplified outcomes (verdicts, metrics, fault
//     report, trace bytes) are identical at --jobs 1, 4 and hardware
//     concurrency, and its aggregation matches a hand-rolled per-repetition
//     aggregate;
//   * fault determinism: a faulty plan replays to the identical outcome and
//     FaultReport on every engine, and reliable transport restores the
//     fault-free verdicts whenever no node crashed and no packet exhausted
//     its retries;
//   * checkpoint/kill/resume: snapshotting at a case-derived round/pulse is
//     a zero observer (the checkpointing run matches the plain run byte for
//     byte), the snapshot survives a csd-ckpt-v1 JSON round trip, and the
//     resumed continuation reproduces the uninterrupted verdicts, metrics,
//     FaultReport, and trace suffix — fault-free and under faults, on both
//     engines;
//   * supervised slices: a Supervisor driven in max_reps_per_call slices
//     through its amplified checkpoints reassembles the uninterrupted
//     aggregate at --jobs 1 and 4, fault-free and with the retry ledger
//     engaged;
//   * node recovery: with scheduled crashes, reliable transport, and
//     RecoveryPolicy on, the run is deterministic, every crashed node
//     rejoins (none left dead with retry budget to spare), and when no
//     conversation exhausted its retries the healed run completes with the
//     fault-free verdicts.
//
// The first violated invariant is returned as a Divergence (check id +
// human-readable detail); nullopt means the case is consistent.
#pragma once

#include <optional>
#include <string>

#include "fuzz/fuzz_case.hpp"

namespace csd::fuzz {

struct Divergence {
  /// Stable short identifier of the violated invariant (used in corpus
  /// file names and for shrinking "same bug" decisions).
  std::string check;
  /// Human-readable specifics: which engine, which field, which values.
  std::string detail;
};

/// Ground truth + the recorded verdict a corpus entry pins down.
struct CaseExpectation {
  /// VF2: does the host contain the pattern at all?
  bool truth = false;
  /// Fault-free amplified sync verdict (early exit off — the full cost).
  bool detected = false;
};

/// Run every engine over `c` and cross-check. Returns the first divergence,
/// or nullopt when all invariants hold. When `expect` is non-null it is
/// filled with the ground truth and fault-free verdict (valid even when a
/// divergence is returned, unless the divergence is in the oracle itself).
std::optional<Divergence> check_case(const FuzzCase& c,
                                     CaseExpectation* expect = nullptr);

}  // namespace csd::fuzz
