// Differential fuzzing campaign driver.
//
// run_fuzzer draws cases from the seeded generator (case i uses
// derive_seed(master_seed, i)), runs each through the differential oracle,
// and on a divergence minimizes the case with the delta-debugging shrinker
// (pinned to the same check id, so shrinking never wanders to a different
// bug) and serializes the shrunk case to a replayable corpus JSON file:
//
//   {
//     "schema": "csd-fuzz-case-v1",
//     "found":  { "check": ..., "detail": ... },
//     "case":   { ... everything needed to re-run ... },
//     "expect": { "truth": ..., "detected": ... }
//   }
//
// `expect` records the VF2 ground truth and the fault-free amplified sync
// verdict of the *shrunk* case, so the corpus replay test can assert the
// fixed engines reproduce them. File names are deterministic
// (<check>-<case-seed-hex>.json): re-running a campaign overwrites its own
// artifacts instead of accumulating duplicates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/fuzz_case.hpp"

namespace csd::fuzz {

struct FuzzOptions {
  /// Wall-clock budget; the campaign stops at the first case boundary past
  /// it. <= 0 means no time budget (use max_cases).
  double seconds = 30.0;
  /// Master seed; the whole campaign is a pure function of it (plus the
  /// case count actually reached within the time budget).
  std::uint64_t seed = 1;
  /// Hard cap on cases (0 = unlimited within the time budget).
  std::uint64_t max_cases = 0;
  /// Directory for shrunk failing cases; empty = don't write files.
  std::string corpus_dir;
  /// Predicate-evaluation budget per shrink.
  std::uint32_t shrink_evals = 300;
};

struct FuzzFailure {
  std::uint64_t case_seed = 0;
  Divergence divergence;
  FuzzCase shrunk;
  /// Corpus file path ("" when corpus_dir was empty).
  std::string file;
};

struct FuzzReport {
  std::uint64_t cases = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const noexcept { return failures.empty(); }
};

/// Serialize one failing (typically shrunk) case in the corpus schema.
obs::Json corpus_entry(const FuzzCase& c, const Divergence& divergence);

/// Parse a corpus document; `expect`/`divergence` receive the recorded
/// expectation and original finding when non-null.
FuzzCase corpus_case(const obs::Json& doc, CaseExpectation* expect = nullptr,
                     Divergence* divergence = nullptr);

/// Run a campaign. Progress and findings go to `log` (one line per event).
FuzzReport run_fuzzer(const FuzzOptions& options, std::ostream& log);

}  // namespace csd::fuzz
