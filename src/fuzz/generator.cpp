#include "fuzz/generator.hpp"

#include <algorithm>

#include "graph/builders.hpp"
#include "support/rng.hpp"

namespace csd::fuzz {

namespace {

Graph random_host(Rng& rng, const Graph& pattern, Vertex n) {
  const auto style = rng.below(3);
  if (style == 0) {
    const double p = 0.1 + 0.1 * static_cast<double>(rng.below(5));
    return build::gnp(n, p, rng);
  }
  if (style == 1) {
    const std::uint64_t max_m =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    return build::gnm(n, rng.below(max_m + 1), rng);
  }
  // Sparse host with the pattern planted: guaranteed-positive instances.
  Graph host = build::gnp(n, 0.1, rng);
  build::plant_subgraph(host, pattern, rng);
  return host;
}

}  // namespace

FuzzCase generate_case(std::uint64_t case_seed) {
  Rng rng(case_seed);
  FuzzCase c;

  switch (rng.below(4)) {
    case 0:
      c.program = ProgramKind::Clique;
      c.param = 3 + static_cast<std::uint32_t>(rng.below(2));  // K_3, K_4
      break;
    case 1:
      c.program = ProgramKind::EvenCycle;
      c.param = rng.coin() ? 4 : 6;  // C_4, C_6
      break;
    case 2:
      c.program = ProgramKind::PipelinedCycle;
      c.param = 3 + static_cast<std::uint32_t>(rng.below(3));  // C_3..C_5
      break;
    default:
      c.program = ProgramKind::Tree;
      c.param = static_cast<std::uint32_t>(rng.below(tree_catalog_size()));
      break;
  }

  const Graph pattern = pattern_graph(c);
  const Vertex pat_n = pattern.num_vertices();
  const Vertex n =
      pat_n + static_cast<Vertex>(rng.below(13));
  c.num_vertices = n;
  c.edges = random_host(rng, pattern, n).edges();

  c.repetitions =
      c.program == ProgramKind::Clique
          ? 1
          : 1 + static_cast<std::uint32_t>(rng.below(4));
  if (rng.coin()) {
    c.bandwidth = 0;  // run at the program's minimum bandwidth
  } else {
    c.bandwidth = effective_bandwidth(c, build_graph(c)) + rng.below(16);
  }
  c.seed = rng();
  c.max_delay = 1 + static_cast<std::uint32_t>(rng.below(8));

  if (rng.coin()) {
    if (rng.coin()) c.drop = 0.02 + 0.07 * static_cast<double>(rng.below(5));
    if (rng.coin()) {
      c.corrupt = 0.02 + 0.07 * static_cast<double>(rng.below(5));
      c.corrupt_headers = rng.coin();
    }
    const auto crashes = rng.below(3);
    for (std::uint64_t i = 0; i < crashes; ++i)
      c.crashes.push_back(
          {static_cast<std::uint32_t>(rng.below(n)), rng.below(8)});
  }
  return c;
}

}  // namespace csd::fuzz
