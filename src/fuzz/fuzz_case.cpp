#include "fuzz/fuzz_case.hpp"

#include <algorithm>

#include "detect/clique_detect.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/tree_detect.hpp"
#include "graph/builders.hpp"
#include "support/check.hpp"

namespace csd::fuzz {

const char* to_string(ProgramKind kind) noexcept {
  switch (kind) {
    case ProgramKind::Clique: return "clique";
    case ProgramKind::EvenCycle: return "even-cycle";
    case ProgramKind::PipelinedCycle: return "pipelined-cycle";
    case ProgramKind::Tree: return "tree";
  }
  return "unknown";
}

namespace {

ProgramKind program_from_name(const std::string& name) {
  if (name == "clique") return ProgramKind::Clique;
  if (name == "even-cycle") return ProgramKind::EvenCycle;
  if (name == "pipelined-cycle") return ProgramKind::PipelinedCycle;
  if (name == "tree") return ProgramKind::Tree;
  CSD_CHECK_MSG(false, "unknown fuzz program '" << name << "'");
  return ProgramKind::Clique;
}

}  // namespace

std::size_t tree_catalog_size() noexcept { return 4; }

Graph tree_catalog(std::size_t index) {
  switch (index) {
    case 0: return build::path(3);  // P_3: 0-1-2
    case 1: return build::star(3);  // K_{1,3}
    case 2: return build::path(4);  // P_4
    case 3: {
      // Broom: star edge plus a 2-edge tail — the smallest tree that is
      // neither a path nor a star, exercising the DP's branching.
      Graph t(4);
      t.add_edge(0, 1);
      t.add_edge(0, 2);
      t.add_edge(2, 3);
      return t;
    }
    default:
      CSD_CHECK_MSG(false, "tree catalog index " << index << " out of range");
      return Graph{};
  }
}

Graph build_graph(const FuzzCase& c) {
  Graph g(c.num_vertices);
  for (const auto& [u, v] : c.edges) g.add_edge(u, v);
  g.sort_adjacency();
  return g;
}

Graph pattern_graph(const FuzzCase& c) {
  switch (c.program) {
    case ProgramKind::Clique:
      return build::complete(c.param);
    case ProgramKind::EvenCycle:
    case ProgramKind::PipelinedCycle:
      return build::cycle(c.param);
    case ProgramKind::Tree:
      return tree_catalog(c.param);
  }
  return Graph{};
}

congest::ProgramFactory make_program(const FuzzCase& c) {
  switch (c.program) {
    case ProgramKind::Clique:
      return detect::clique_detect_program(c.param);
    case ProgramKind::EvenCycle: {
      detect::EvenCycleConfig ec;
      ec.k = c.param / 2;
      return detect::even_cycle_program(ec);
    }
    case ProgramKind::PipelinedCycle:
      return detect::pipelined_cycle_program(c.param);
    case ProgramKind::Tree:
      return detect::tree_detect_program(tree_catalog(c.param));
  }
  return {};
}

std::uint64_t effective_bandwidth(const FuzzCase& c, const Graph& host) {
  const std::uint64_t n = host.num_vertices();
  std::uint64_t min_b = 1;
  switch (c.program) {
    case ProgramKind::Clique:
      min_b = detect::clique_detect_min_bandwidth(n);
      break;
    case ProgramKind::EvenCycle: {
      detect::EvenCycleConfig ec;
      ec.k = c.param / 2;
      min_b = detect::even_cycle_min_bandwidth(n, ec);
      break;
    }
    case ProgramKind::PipelinedCycle:
      min_b = detect::pipelined_cycle_min_bandwidth(n, c.param);
      break;
    case ProgramKind::Tree:
      min_b = detect::tree_detect_min_bandwidth(tree_catalog(c.param));
      break;
  }
  return std::max(c.bandwidth, min_b);
}

std::uint64_t round_budget(const FuzzCase& c, const Graph& host,
                           std::uint64_t bandwidth) {
  const std::uint64_t n = host.num_vertices();
  switch (c.program) {
    case ProgramKind::Clique:
      return detect::clique_detect_round_budget(n, host.max_degree(),
                                                bandwidth) +
             2;
    case ProgramKind::EvenCycle: {
      detect::EvenCycleConfig ec;
      ec.k = c.param / 2;
      return detect::make_even_cycle_schedule(n, ec).total_rounds() + 1;
    }
    case ProgramKind::PipelinedCycle:
      return detect::pipelined_cycle_round_budget(n, c.param) + 1;
    case ProgramKind::Tree:
      return detect::tree_detect_round_budget(tree_catalog(c.param)) + 1;
  }
  return 1;
}

congest::FaultPlan fault_plan(const FuzzCase& c) {
  congest::FaultPlan plan;
  plan.drop = c.drop;
  plan.corrupt = c.corrupt;
  plan.corrupt_headers = c.corrupt_headers;
  plan.crashes = c.crashes;
  return plan;
}

obs::Json to_json(const FuzzCase& c) {
  obs::Json j = obs::Json::object();
  j.set("n", c.num_vertices);
  obs::Json edges = obs::Json::array();
  for (const auto& [u, v] : c.edges) {
    obs::Json e = obs::Json::array();
    e.push(u);
    e.push(v);
    edges.push(std::move(e));
  }
  j.set("edges", std::move(edges));
  j.set("program", to_string(c.program));
  j.set("param", c.param);
  j.set("repetitions", c.repetitions);
  j.set("bandwidth", c.bandwidth);
  j.set("seed", c.seed);
  j.set("max_delay", c.max_delay);
  j.set("drop", c.drop);
  j.set("corrupt", c.corrupt);
  j.set("corrupt_headers", c.corrupt_headers);
  obs::Json crashes = obs::Json::array();
  for (const auto& ev : c.crashes) {
    obs::Json e = obs::Json::object();
    e.set("node", ev.node);
    e.set("round", ev.round);
    crashes.push(std::move(e));
  }
  j.set("crashes", std::move(crashes));
  return j;
}

FuzzCase case_from_json(const obs::Json& j) {
  FuzzCase c;
  c.num_vertices = static_cast<std::uint32_t>(j.at("n").as_uint());
  c.edges.clear();
  for (const obs::Json& e : j.at("edges").items()) {
    CSD_CHECK_MSG(e.items().size() == 2, "fuzz case edge wants [u, v]");
    const auto u = static_cast<Vertex>(e.items()[0].as_uint());
    const auto v = static_cast<Vertex>(e.items()[1].as_uint());
    CSD_CHECK_MSG(u < v && v < c.num_vertices,
                  "fuzz case edge {" << u << "," << v << "} not canonical");
    c.edges.emplace_back(u, v);
  }
  CSD_CHECK_MSG(std::is_sorted(c.edges.begin(), c.edges.end()),
                "fuzz case edges not sorted");
  c.program = program_from_name(j.at("program").as_string());
  c.param = static_cast<std::uint32_t>(j.at("param").as_uint());
  c.repetitions = static_cast<std::uint32_t>(j.at("repetitions").as_uint());
  c.bandwidth = j.at("bandwidth").as_uint();
  c.seed = j.at("seed").as_uint();
  c.max_delay = static_cast<std::uint32_t>(j.at("max_delay").as_uint());
  c.drop = j.at("drop").as_double();
  c.corrupt = j.at("corrupt").as_double();
  c.corrupt_headers = j.at("corrupt_headers").as_bool();
  for (const obs::Json& e : j.at("crashes").items()) {
    congest::CrashEvent ev;
    ev.node = static_cast<std::uint32_t>(e.at("node").as_uint());
    ev.round = e.at("round").as_uint();
    c.crashes.push_back(ev);
  }
  return c;
}

}  // namespace csd::fuzz
