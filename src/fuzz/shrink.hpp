// Delta-debugging minimizer for failing fuzz cases.
//
// Given a case on which `still_fails` returns true, shrink_case greedily
// searches for a smaller case that still fails, iterating to a fixpoint:
//   * ddmin over the edge list (classic complement-removal with doubling
//     granularity — removes whole chunks of edges first, single edges last),
//   * dropping crash events and zeroing the drop/corrupt probabilities,
//   * reducing the amplification count toward 1,
//   * trimming trailing isolated vertices (and the crash events that
//     referenced them),
//   * clamping the async delay bound to 1 and trying a handful of small
//     run seeds.
// Every candidate is validated by re-running the full differential oracle
// (or whatever predicate the caller supplies), so a shrunk case is failing
// by construction, never by extrapolation. The predicate-evaluation budget
// bounds worst-case shrink time; the best case found so far is returned
// when it runs out.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/fuzz_case.hpp"

namespace csd::fuzz {

/// Returns true when the candidate still exhibits the failure being
/// minimized. Typically wraps check_case (optionally pinned to the original
/// Divergence::check id so shrinking never wanders to a different bug).
using CasePredicate = std::function<bool(const FuzzCase&)>;

/// Minimize `failing` under `still_fails` (which must hold for `failing`
/// itself). `max_evals` caps predicate evaluations.
FuzzCase shrink_case(FuzzCase failing, const CasePredicate& still_fails,
                     std::uint32_t max_evals = 400);

}  // namespace csd::fuzz
