#include "fuzz/shrink.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace csd::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(FuzzCase best, const CasePredicate& still_fails,
           std::uint32_t max_evals)
      : best_(std::move(best)), still_fails_(still_fails),
        evals_left_(max_evals) {}

  FuzzCase run() {
    bool progress = true;
    while (progress && evals_left_ > 0) {
      progress = false;
      progress |= shrink_edges();
      progress |= shrink_faults();
      progress |= shrink_repetitions();
      progress |= trim_vertices();
      progress |= shrink_schedule();
    }
    return best_;
  }

 private:
  /// Accept `candidate` as the new best iff it still fails.
  bool accept(const FuzzCase& candidate) {
    if (evals_left_ == 0) return false;
    --evals_left_;
    if (!still_fails_(candidate)) return false;
    best_ = candidate;
    return true;
  }

  /// ddmin over the edge list: try removing chunks, halving the chunk size
  /// until single edges, restarting from coarse chunks on every success.
  bool shrink_edges() {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(best_.edges.size() / 2, 1);
    while (chunk >= 1 && evals_left_ > 0 && !best_.edges.empty()) {
      bool removed = false;
      for (std::size_t start = 0;
           start < best_.edges.size() && evals_left_ > 0; ) {
        FuzzCase candidate = best_;
        const auto first =
            candidate.edges.begin() + static_cast<std::ptrdiff_t>(start);
        const auto last =
            candidate.edges.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(start + chunk, candidate.edges.size()));
        candidate.edges.erase(first, last);
        if (accept(candidate)) {
          removed = any = true;  // indices shift; retry same position
        } else {
          start += chunk;
        }
      }
      if (!removed) {
        if (chunk == 1) break;
        chunk /= 2;
      }
    }
    return any;
  }

  bool shrink_faults() {
    bool any = false;
    for (std::size_t i = 0; i < best_.crashes.size() && evals_left_ > 0;) {
      FuzzCase candidate = best_;
      candidate.crashes.erase(candidate.crashes.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (accept(candidate)) any = true; else ++i;
    }
    if (best_.drop > 0.0) {
      FuzzCase candidate = best_;
      candidate.drop = 0.0;
      any |= accept(candidate);
    }
    if (best_.corrupt > 0.0) {
      FuzzCase candidate = best_;
      candidate.corrupt = 0.0;
      candidate.corrupt_headers = false;
      any |= accept(candidate);
    }
    if (best_.corrupt_headers) {
      FuzzCase candidate = best_;
      candidate.corrupt_headers = false;
      any |= accept(candidate);
    }
    return any;
  }

  bool shrink_repetitions() {
    bool any = false;
    while (best_.repetitions > 1 && evals_left_ > 0) {
      FuzzCase candidate = best_;
      candidate.repetitions = 1;
      if (accept(candidate)) { any = true; continue; }
      candidate = best_;
      candidate.repetitions = best_.repetitions - 1;
      if (!accept(candidate)) break;
      any = true;
    }
    return any;
  }

  /// Drop trailing vertices no edge touches (keeping at least the pattern
  /// size so the case stays runnable); crashes on removed nodes go too.
  bool trim_vertices() {
    Vertex used = pattern_graph(best_).num_vertices();
    for (const auto& [u, v] : best_.edges)
      used = std::max(used, static_cast<Vertex>(v + 1));
    if (used >= best_.num_vertices) return false;
    FuzzCase candidate = best_;
    candidate.num_vertices = used;
    std::erase_if(candidate.crashes,
                  [&](const congest::CrashEvent& ev) { return ev.node >= used; });
    return accept(candidate);
  }

  bool shrink_schedule() {
    bool any = false;
    if (best_.max_delay > 1) {
      FuzzCase candidate = best_;
      candidate.max_delay = 1;
      any |= accept(candidate);
    }
    for (const std::uint64_t seed : {0ULL, 1ULL, 2ULL}) {
      if (best_.seed == seed) break;  // already minimal
      FuzzCase candidate = best_;
      candidate.seed = seed;
      if (accept(candidate)) { any = true; break; }
    }
    return any;
  }

  FuzzCase best_;
  const CasePredicate& still_fails_;
  std::uint32_t evals_left_;
};

}  // namespace

FuzzCase shrink_case(FuzzCase failing, const CasePredicate& still_fails,
                     std::uint32_t max_evals) {
  CSD_CHECK_MSG(still_fails(failing),
                "shrink_case wants a case that fails its predicate");
  return Shrinker(std::move(failing), still_fails, max_evals).run();
}

}  // namespace csd::fuzz
