// Seeded random fuzz-case generator.
//
// generate_case(case_seed) is a pure function: the same seed always yields
// the same FuzzCase, so a fuzzing campaign is reproducible from its master
// seed alone (case i uses derive_seed(master, i)) and a failure can be
// re-generated without storing anything but the seed.
//
// Distribution (chosen to hit the engines' corners, see DESIGN.md §8):
//   * program: uniform over clique / even-cycle / pipelined-cycle / tree,
//     with small parameters (K_3..K_4, C_4/C_6, C_3..C_5, 4 catalog trees);
//   * host: n in [pattern, pattern + 12]; G(n, p) with p in [0.1, 0.5],
//     G(n, m), or a sparse host with the pattern deliberately planted
//     (so ~1/3 of cases are guaranteed positives — pure random hosts at
//     these sizes are mostly negative);
//   * amplification: 1-4 repetitions (1 for the deterministic clique);
//   * bandwidth: the program's minimum, or minimum + [0, 16) extra bits;
//   * schedule: fresh 64-bit run seed, async delay bound in [1, 8];
//   * faults (~half of all cases): drop/corrupt in {0} ∪ [0.02, 0.3],
//     header corruption on a coin flip when corrupting, and up to two
//     scheduled crashes in the first 8 rounds.
#pragma once

#include <cstdint>

#include "fuzz/fuzz_case.hpp"

namespace csd::fuzz {

/// Deterministically generate the case for `case_seed`.
FuzzCase generate_case(std::uint64_t case_seed);

}  // namespace csd::fuzz
