#include "fuzz/differential.hpp"

#include <sstream>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::fuzz {

namespace {

// Independent restatement of the wire formats. Deliberately NOT written in
// terms of Frame::kOverheadBits / TransportConfig: if an engine-side
// accounting constant regresses, the fuzzer diverges against these numbers
// instead of agreeing with the regressed engine.
constexpr std::uint64_t kFrameOverheadBits = 64 + 2;  // pulse + 2 flags
constexpr std::uint64_t kSeqWireBits = 32;
constexpr std::uint64_t kCrcWireBits = 32;

std::string trace_bytes(const obs::RunTrace& trace) {
  std::ostringstream os;
  trace.write_jsonl(os);
  return os.str();
}

std::string verdicts_str(const std::vector<congest::Verdict>& vs) {
  std::string s;
  s.reserve(vs.size());
  for (const auto v : vs) s += v == congest::Verdict::Reject ? 'R' : 'a';
  return s;
}

Divergence diverge(const char* check, const std::ostringstream& detail) {
  return Divergence{check, detail.str()};
}

/// Everything a repeated faulty run must reproduce bit-for-bit.
struct AsyncDigest {
  bool completed;
  bool detected;
  bool detected_by_survivors;
  std::vector<congest::Verdict> verdicts;
  std::uint64_t pulses;
  std::uint64_t payload_bits;
  std::uint64_t overhead_bits;
  std::uint64_t frames;
  std::uint64_t transport_bits;
  std::uint64_t acks;
  congest::FaultReport faults;

  friend bool operator==(const AsyncDigest&, const AsyncDigest&) = default;
};

AsyncDigest digest(const congest::AsyncRunOutcome& o) {
  return {o.completed,     o.detected, o.faults.detected_by_survivors,
          o.verdicts,      o.pulses,   o.payload_bits,
          o.overhead_bits, o.frames,   o.transport_bits,
          o.acks,          o.faults};
}

}  // namespace

std::optional<Divergence> check_case(const FuzzCase& c,
                                     CaseExpectation* expect) {
  const Graph host = build_graph(c);
  const Graph pattern = pattern_graph(c);
  const std::uint64_t n = host.num_vertices();
  for (const auto& ev : c.crashes)
    CSD_CHECK_MSG(ev.node < n, "crash event for node " << ev.node
                               << " outside the " << n << "-vertex host");

  // -- ground truth: VF2 vs the family-specific oracle ----------------------
  const bool truth = contains_subgraph(host, pattern);
  bool family_truth = false;
  switch (c.program) {
    case ProgramKind::Clique:
      family_truth = oracle::has_clique(host, c.param);
      break;
    case ProgramKind::EvenCycle:
    case ProgramKind::PipelinedCycle:
      family_truth = oracle::has_cycle_of_length(host, c.param);
      break;
    case ProgramKind::Tree:
      family_truth = oracle::has_tree(host, tree_catalog(c.param));
      break;
  }
  if (truth != family_truth) {
    std::ostringstream os;
    os << "VF2 says " << (truth ? "present" : "absent") << " but the "
       << to_string(c.program) << " oracle says "
       << (family_truth ? "present" : "absent");
    return diverge("vf2-vs-family-oracle", os);
  }
  if (expect) expect->truth = truth;

  const std::uint64_t bandwidth = effective_bandwidth(c, host);
  const std::uint64_t budget = round_budget(c, host, bandwidth);
  const congest::ProgramFactory factory = make_program(c);

  congest::NetworkConfig sync_cfg;
  sync_cfg.bandwidth = bandwidth;
  sync_cfg.max_rounds = budget;
  sync_cfg.seed = c.seed;
  sync_cfg.trace.enabled = true;

  congest::AsyncConfig async_cfg;
  async_cfg.bandwidth = bandwidth;
  async_cfg.max_pulses = budget;
  async_cfg.seed = c.seed;
  async_cfg.max_delay = c.max_delay;
  async_cfg.trace.enabled = true;

  // -- fault-free per-repetition triple-engine equivalence ------------------
  const congest::Network net(host, sync_cfg);
  obs::RunTrace merged_sync_trace;
  std::vector<congest::RunOutcome> sync_reps;
  sync_reps.reserve(c.repetitions);
  for (std::uint32_t rep = 0; rep < c.repetitions; ++rep) {
    // run_amplified's repetition seed schedule (the async CLI mirrors it).
    const std::uint64_t rep_seed = derive_seed(c.seed, 0x5eedULL + rep);
    congest::RunOutcome sync = net.run(factory, rep_seed);
    merged_sync_trace.append(sync.trace);

    for (const auto mode :
         {congest::TransportMode::Raw, congest::TransportMode::Reliable}) {
      congest::AsyncConfig cfg = async_cfg;
      cfg.seed = rep_seed;
      cfg.transport = mode;
      const congest::AsyncRunOutcome async = run_async(host, cfg, factory);
      const char* name = mode == congest::TransportMode::Raw
                             ? "async-raw"
                             : "async-reliable";
      if (async.completed != sync.completed || async.detected != sync.detected ||
          async.verdicts != sync.verdicts) {
        std::ostringstream os;
        os << name << " rep " << rep << ": sync verdicts "
           << verdicts_str(sync.verdicts) << " (completed=" << sync.completed
           << ", detected=" << sync.detected << ") vs async "
           << verdicts_str(async.verdicts) << " (completed=" << async.completed
           << ", detected=" << async.detected << ")";
        return diverge("sync-vs-async-verdicts", os);
      }
      if (async.payload_bits != sync.metrics.total_bits ||
          async.pulses != sync.metrics.rounds) {
        std::ostringstream os;
        os << name << " rep " << rep << ": payload "
           << async.payload_bits << " vs sync bits "
           << sync.metrics.total_bits << "; pulses " << async.pulses
           << " vs rounds " << sync.metrics.rounds;
        return diverge("sync-vs-async-accounting", os);
      }
      if (trace_bytes(async.trace) != trace_bytes(sync.trace)) {
        std::ostringstream os;
        os << name << " rep " << rep
           << ": per-round JSONL trace differs from the sync engine";
        return diverge("sync-vs-async-trace", os);
      }
      if (async.overhead_bits != kFrameOverheadBits * async.frames) {
        std::ostringstream os;
        os << name << " rep " << rep << ": overhead_bits "
           << async.overhead_bits << " != " << kFrameOverheadBits << " * "
           << async.frames << " frames";
        return diverge("frame-overhead-accounting", os);
      }
      if (mode == congest::TransportMode::Reliable) {
        // A fault-free reliable run charges exactly (seq + crc) per data
        // packet and per ack and never retransmits. Acks cannot exceed
        // frames (one per *delivered* packet — the run may end with the
        // final pulse's frames still in flight, so <=, not ==). With no
        // faults injected the plan-level counters must all stay at zero:
        // any duplicate packet, duplicate ack, or transport failure here
        // is accounting noise the engines invented on their own.
        const std::uint64_t expected =
            (async.frames + async.acks) * (kSeqWireBits + kCrcWireBits);
        if (async.acks > async.frames || async.faults.retransmissions != 0 ||
            async.faults.checksum_rejects != 0 ||
            async.faults.duplicate_packets != 0 ||
            async.faults.duplicate_acks != 0 ||
            async.faults.transport_failures != 0 ||
            async.transport_bits != expected) {
          std::ostringstream os;
          os << "rep " << rep << ": acks " << async.acks << " for "
             << async.frames << " frames, " << async.faults.retransmissions
             << " retransmissions, " << async.faults.duplicate_packets
             << " duplicate packets, " << async.faults.duplicate_acks
             << " duplicate acks, " << async.faults.transport_failures
             << " transport failures, transport_bits "
             << async.transport_bits << " (want " << expected << ")";
          return diverge("reliable-transport-accounting", os);
        }
      }
    }
    sync_reps.push_back(std::move(sync));
  }

  // -- one-sided error ------------------------------------------------------
  bool any_detected = false;
  for (const auto& rep : sync_reps) any_detected |= rep.detected;
  if (any_detected && !truth) {
    std::ostringstream os;
    os << to_string(c.program)
       << " rejected on a host with no copy of the pattern";
    return diverge("one-sided-error", os);
  }
  if (c.program == ProgramKind::Clique && any_detected != truth) {
    std::ostringstream os;
    os << "deterministic clique detector said "
       << (any_detected ? "present" : "absent") << ", oracle says "
       << (truth ? "present" : "absent");
    return diverge("clique-exactness", os);
  }
  if (expect) expect->detected = any_detected;

  // -- run_amplified: jobs-count determinism + aggregation ------------------
  congest::AmplifyOptions full;
  full.jobs = 1;
  full.early_exit = false;
  const congest::RunOutcome amplified =
      run_amplified(host, sync_cfg, factory, c.repetitions, full);
  for (const unsigned jobs : {4u, 0u}) {
    congest::AmplifyOptions opts = full;
    opts.jobs = jobs;
    const congest::RunOutcome other =
        run_amplified(host, sync_cfg, factory, c.repetitions, opts);
    if (other.detected != amplified.detected ||
        other.completed != amplified.completed ||
        other.verdicts != amplified.verdicts ||
        other.metrics.rounds != amplified.metrics.rounds ||
        other.metrics.messages != amplified.metrics.messages ||
        other.metrics.total_bits != amplified.metrics.total_bits ||
        other.metrics.max_message_bits != amplified.metrics.max_message_bits ||
        other.metrics.bits_sent_by_node != amplified.metrics.bits_sent_by_node ||
        !(other.faults == amplified.faults) ||
        trace_bytes(other.trace) != trace_bytes(amplified.trace)) {
      std::ostringstream os;
      os << "run_amplified at --jobs " << jobs
         << " differs from --jobs 1 (detected " << other.detected << "/"
         << amplified.detected << ", bits " << other.metrics.total_bits << "/"
         << amplified.metrics.total_bits << ")";
      return diverge("jobs-determinism", os);
    }
  }

  // Aggregation rules vs a hand-rolled per-repetition aggregate.
  bool agg_detected = false, agg_completed = true;
  std::uint64_t agg_rounds = 0, agg_bits = 0, agg_messages = 0;
  std::vector<congest::Verdict> agg_verdicts(host.num_vertices(),
                                             congest::Verdict::Accept);
  for (const auto& rep : sync_reps) {
    agg_detected |= rep.detected;
    agg_completed &= rep.completed;
    agg_rounds += rep.metrics.rounds;
    agg_bits += rep.metrics.total_bits;
    agg_messages += rep.metrics.messages;
    for (std::size_t v = 0; v < rep.verdicts.size(); ++v)
      if (rep.verdicts[v] == congest::Verdict::Reject)
        agg_verdicts[v] = congest::Verdict::Reject;
  }
  if (amplified.detected != agg_detected ||
      amplified.completed != agg_completed ||
      amplified.metrics.rounds != agg_rounds ||
      amplified.metrics.total_bits != agg_bits ||
      amplified.metrics.messages != agg_messages ||
      amplified.verdicts != agg_verdicts ||
      trace_bytes(amplified.trace) != trace_bytes(merged_sync_trace)) {
    std::ostringstream os;
    os << "run_amplified aggregate (detected=" << amplified.detected
       << ", rounds=" << amplified.metrics.rounds
       << ", bits=" << amplified.metrics.total_bits
       << ") != per-repetition aggregate (detected=" << agg_detected
       << ", rounds=" << agg_rounds << ", bits=" << agg_bits << ")";
    return diverge("amplified-aggregation", os);
  }

  // Early exit may skip repetitions but can never change the answer.
  congest::AmplifyOptions early;
  early.jobs = 1;
  early.early_exit = true;
  const congest::RunOutcome exited =
      run_amplified(host, sync_cfg, factory, c.repetitions, early);
  if (exited.detected != amplified.detected ||
      exited.metrics.repetitions_executed +
              exited.metrics.repetitions_skipped !=
          c.repetitions) {
    std::ostringstream os;
    os << "early-exit amplification: detected " << exited.detected << " vs "
       << amplified.detected << ", executed "
       << exited.metrics.repetitions_executed << " + skipped "
       << exited.metrics.repetitions_skipped << " != " << c.repetitions;
    return diverge("early-exit", os);
  }

  if (!c.has_faults()) return std::nullopt;

  // -- faulty runs: determinism + reliable-transport recovery ---------------
  const congest::FaultPlan plan = fault_plan(c);

  congest::NetworkConfig faulty_sync = sync_cfg;
  faulty_sync.faults = plan;
  const congest::Network faulty_net(host, faulty_sync);
  const congest::RunOutcome s1 = faulty_net.run(factory);
  const congest::RunOutcome s2 = faulty_net.run(factory);
  if (s1.detected != s2.detected || s1.completed != s2.completed ||
      s1.verdicts != s2.verdicts ||
      s1.metrics.total_bits != s2.metrics.total_bits ||
      !(s1.faults == s2.faults)) {
    std::ostringstream os;
    os << "sync engine under faults is not deterministic (detected "
       << s1.detected << "/" << s2.detected << ")";
    return diverge("faulty-sync-determinism", os);
  }
  if (s1.faults.crashed_nodes.empty() &&
      s1.faults.detected_by_survivors != s1.detected) {
    std::ostringstream os;
    os << "sync: no node crashed but detected_by_survivors "
       << s1.faults.detected_by_survivors << " != detected " << s1.detected;
    return diverge("survivor-verdict", os);
  }

  for (const auto mode :
       {congest::TransportMode::Raw, congest::TransportMode::Reliable}) {
    congest::AsyncConfig cfg = async_cfg;
    cfg.faults = plan;
    cfg.transport = mode;
    const congest::AsyncRunOutcome a1 = run_async(host, cfg, factory);
    const congest::AsyncRunOutcome a2 = run_async(host, cfg, factory);
    const char* name = mode == congest::TransportMode::Raw
                           ? "async-raw"
                           : "async-reliable";
    if (!(digest(a1) == digest(a2))) {
      std::ostringstream os;
      os << name << " under faults is not deterministic (pulses " << a1.pulses
         << "/" << a2.pulses << ", payload " << a1.payload_bits << "/"
         << a2.payload_bits << ")";
      return diverge("faulty-async-determinism", os);
    }
    if (a1.overhead_bits != kFrameOverheadBits * a1.frames) {
      std::ostringstream os;
      os << name << " under faults: overhead_bits " << a1.overhead_bits
         << " != " << kFrameOverheadBits << " * " << a1.frames << " frames";
      return diverge("frame-overhead-accounting", os);
    }
    if (a1.faults.crashed_nodes.empty() &&
        a1.faults.detected_by_survivors != a1.detected) {
      std::ostringstream os;
      os << name << ": no node crashed but detected_by_survivors "
         << a1.faults.detected_by_survivors << " != detected " << a1.detected;
      return diverge("survivor-verdict", os);
    }
    // One-sided error survives faults under Reliable (the CRC shields the
    // programs from corrupted payloads) and under Raw as long as nothing
    // was corrupted (drops/crashes only silence nodes).
    const bool shielded =
        mode == congest::TransportMode::Reliable || c.corrupt == 0.0;
    if (shielded && a1.detected && !truth) {
      std::ostringstream os;
      os << name << " rejected on a host with no copy of the pattern";
      return diverge("one-sided-error-under-faults", os);
    }
    if (mode == congest::TransportMode::Reliable &&
        a1.faults.crashed_nodes.empty() && a1.faults.transport_failures == 0) {
      // No node fell silent and no packet exhausted its retries, so the
      // ARQ must have healed every fault: the run completes and reproduces
      // the fault-free sync execution exactly. A stall here means a
      // corrupted packet slipped past the CRC into the synchronizer.
      if (!a1.completed) {
        std::ostringstream os;
        os << "reliable run stalled (pulses " << a1.pulses << ", "
           << a1.faults.stalled_nodes.size()
           << " stalled nodes) without crashes or transport failures";
        return diverge("reliable-recovery", os);
      }
      const congest::RunOutcome clean = net.run(factory);
      if (a1.verdicts != clean.verdicts || a1.detected != clean.detected ||
          a1.payload_bits != clean.metrics.total_bits) {
        std::ostringstream os;
        os << "reliable transport healed all faults but verdicts "
           << verdicts_str(a1.verdicts) << " != fault-free sync "
           << verdicts_str(clean.verdicts) << " (payload " << a1.payload_bits
           << " vs " << clean.metrics.total_bits << ")";
        return diverge("reliable-recovery", os);
      }
    }
  }

  return std::nullopt;
}

}  // namespace csd::fuzz
