#include "fuzz/differential.hpp"

#include <algorithm>
#include <sstream>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "congest/snapshot.hpp"
#include "congest/supervisor.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::fuzz {

namespace {

// Independent restatement of the wire formats. Deliberately NOT written in
// terms of Frame::kOverheadBits / TransportConfig: if an engine-side
// accounting constant regresses, the fuzzer diverges against these numbers
// instead of agreeing with the regressed engine.
constexpr std::uint64_t kFrameOverheadBits = 64 + 2;  // pulse + 2 flags
constexpr std::uint64_t kSeqWireBits = 32;
constexpr std::uint64_t kCrcWireBits = 32;

std::string trace_bytes(const obs::RunTrace& trace) {
  std::ostringstream os;
  trace.write_jsonl(os);
  return os.str();
}

std::string verdicts_str(const std::vector<congest::Verdict>& vs) {
  std::string s;
  s.reserve(vs.size());
  for (const auto v : vs) s += v == congest::Verdict::Reject ? 'R' : 'a';
  return s;
}

Divergence diverge(const char* check, const std::ostringstream& detail) {
  return Divergence{check, detail.str()};
}

/// Everything a repeated faulty run must reproduce bit-for-bit.
struct AsyncDigest {
  bool completed;
  bool detected;
  bool detected_by_survivors;
  std::vector<congest::Verdict> verdicts;
  std::uint64_t pulses;
  std::uint64_t payload_bits;
  std::uint64_t overhead_bits;
  std::uint64_t frames;
  std::uint64_t transport_bits;
  std::uint64_t acks;
  congest::FaultReport faults;

  friend bool operator==(const AsyncDigest&, const AsyncDigest&) = default;
};

AsyncDigest digest(const congest::AsyncRunOutcome& o) {
  return {o.completed,     o.detected, o.faults.detected_by_survivors,
          o.verdicts,      o.pulses,   o.payload_bits,
          o.overhead_bits, o.frames,   o.transport_bits,
          o.acks,          o.faults};
}

/// Everything a resumed sync run must reproduce bit-for-bit.
struct SyncDigest {
  bool completed;
  bool detected;
  std::vector<congest::Verdict> verdicts;
  std::uint64_t rounds;
  std::uint64_t messages;
  std::uint64_t total_bits;
  std::uint64_t max_message_bits;
  std::vector<std::uint64_t> bits_sent_by_node;
  congest::FaultReport faults;

  friend bool operator==(const SyncDigest&, const SyncDigest&) = default;
};

SyncDigest digest(const congest::RunOutcome& o) {
  return {o.completed,
          o.detected,
          o.verdicts,
          o.metrics.rounds,
          o.metrics.messages,
          o.metrics.total_bits,
          o.metrics.max_message_bits,
          o.metrics.bits_sent_by_node,
          o.faults};
}

/// The resumed trace must match the uninterrupted one for every round at or
/// past the resume point (earlier rounds are quiet in the resumed trace).
/// Phases are compared by NAME: the traces intern names in first-use order,
/// so the indices may disagree when the prefix declared phases the resumed
/// run never saw.
bool trace_suffix_matches(const obs::RunTrace& full,
                          const obs::RunTrace& resumed, std::uint64_t from) {
  const auto& a = full.rounds();
  const auto& b = resumed.rounds();
  if (a.size() != b.size()) return false;
  for (std::size_t i = from; i < a.size(); ++i) {
    if (a[i].round != b[i].round || a[i].messages != b[i].messages ||
        a[i].bits != b[i].bits || a[i].node_messages != b[i].node_messages ||
        a[i].node_bits != b[i].node_bits)
      return false;
    if ((a[i].phase >= 0) != (b[i].phase >= 0)) return false;
    if (a[i].phase >= 0 &&
        full.phase_names()[static_cast<std::size_t>(a[i].phase)] !=
            resumed.phase_names()[static_cast<std::size_t>(b[i].phase)])
      return false;
  }
  return true;
}

/// Serialize the snapshot to JSON and parse it back — the resume below then
/// exercises the csd-ckpt-v1 wire format, not just the in-memory structs.
congest::Snapshot wire_round_trip(const congest::Snapshot& snap) {
  return congest::snapshot_from_json(
      obs::Json::parse(congest::to_json(snap).dump()));
}

/// Checkpoint-at-a-random-round, discard the engine, resume: the observed
/// run must be a zero observer of the reference (capturing changes nothing)
/// and the resumed continuation must be bit-identical on verdicts, fault
/// report, accounting, and the trace suffix.
std::optional<Divergence> check_sync_resume(
    const Graph& host, congest::NetworkConfig cfg,
    const congest::ProgramFactory& factory,
    const congest::RunOutcome& reference, std::uint64_t pick_seed,
    const char* name) {
  if (reference.metrics.rounds < 2) return std::nullopt;
  cfg.checkpoint_at_round = 1 + pick_seed % (reference.metrics.rounds - 1);
  const congest::Network net(host, cfg);
  const congest::RunOutcome observed = net.run(factory);
  // Round records must match in full; raw trace bytes may not — the
  // checkpointing run legitimately reports a checkpoints_taken counter in
  // the trace summary.
  if (!(digest(observed) == digest(reference)) ||
      !trace_suffix_matches(reference.trace, observed.trace, 0)) {
    std::ostringstream os;
    os << name << ": checkpointing at round " << cfg.checkpoint_at_round
       << " changed the run (rounds " << observed.metrics.rounds << "/"
       << reference.metrics.rounds << ", bits "
       << observed.metrics.total_bits << "/" << reference.metrics.total_bits
       << ")";
    return diverge("checkpoint-zero-observer", os);
  }
  if (observed.checkpoint == nullptr) {
    std::ostringstream os;
    os << name << ": no snapshot captured at round "
       << cfg.checkpoint_at_round << " of a " << reference.metrics.rounds
       << "-round run";
    return diverge("checkpoint-missing", os);
  }
  const congest::RunOutcome resumed =
      net.resume(factory, wire_round_trip(*observed.checkpoint));
  if (!(digest(resumed) == digest(reference))) {
    std::ostringstream os;
    os << name << ": resume from round " << cfg.checkpoint_at_round
       << " diverged (verdicts " << verdicts_str(resumed.verdicts) << " vs "
       << verdicts_str(reference.verdicts) << ", bits "
       << resumed.metrics.total_bits << " vs "
       << reference.metrics.total_bits << ")";
    return diverge("checkpoint-resume", os);
  }
  if (!trace_suffix_matches(reference.trace, resumed.trace,
                            cfg.checkpoint_at_round)) {
    std::ostringstream os;
    os << name << ": resumed trace suffix differs from the uninterrupted "
       << "trace past round " << cfg.checkpoint_at_round;
    return diverge("checkpoint-resume", os);
  }
  return std::nullopt;
}

/// The async flavour of check_sync_resume (both wire disciplines, and the
/// recovery configuration when the caller enables it in `cfg`).
std::optional<Divergence> check_async_resume(
    const Graph& host, congest::AsyncConfig cfg,
    const congest::ProgramFactory& factory,
    const congest::AsyncRunOutcome& reference, std::uint64_t pick_seed,
    const char* name) {
  if (reference.pulses < 2) return std::nullopt;
  cfg.checkpoint_at_pulse = 1 + pick_seed % (reference.pulses - 1);
  const congest::AsyncRunOutcome observed = run_async(host, cfg, factory);
  if (!(digest(observed) == digest(reference)) ||
      !trace_suffix_matches(reference.trace, observed.trace, 0)) {
    std::ostringstream os;
    os << name << ": checkpointing at pulse " << cfg.checkpoint_at_pulse
       << " changed the run (pulses " << observed.pulses << "/"
       << reference.pulses << ", payload " << observed.payload_bits << "/"
       << reference.payload_bits << ")";
    return diverge("checkpoint-zero-observer", os);
  }
  if (observed.checkpoint == nullptr) {
    // An event-free run (no edges anywhere) never enters the event loop and
    // so never crosses a capture point; there is nothing to freeze.
    if (observed.frames == 0) return std::nullopt;
    std::ostringstream os;
    os << name << ": no snapshot captured at pulse "
       << cfg.checkpoint_at_pulse << " of a " << reference.pulses
       << "-pulse run";
    return diverge("checkpoint-missing", os);
  }
  const congest::AsyncRunOutcome resumed =
      resume_async(host, cfg, factory, wire_round_trip(*observed.checkpoint));
  if (!(digest(resumed) == digest(reference))) {
    std::ostringstream os;
    os << name << ": resume from pulse "
       << observed.checkpoint->async_state.pulses << " diverged (verdicts "
       << verdicts_str(resumed.verdicts) << " vs "
       << verdicts_str(reference.verdicts) << ", payload "
       << resumed.payload_bits << " vs " << reference.payload_bits << ")";
    return diverge("checkpoint-resume", os);
  }
  if (!trace_suffix_matches(reference.trace, resumed.trace,
                            observed.checkpoint->async_state.pulses)) {
    std::ostringstream os;
    os << name << ": resumed trace suffix differs from the uninterrupted "
       << "trace past pulse " << observed.checkpoint->async_state.pulses;
    return diverge("checkpoint-resume", os);
  }
  return std::nullopt;
}

/// Drive the supervisor in slices through its amplified checkpoints at
/// --jobs 1 and 4 and require the reassembled aggregate to match the
/// uninterrupted reference bit for bit.
std::optional<Divergence> check_supervised_resume(
    const Graph& host, const congest::NetworkConfig& cfg,
    const congest::ProgramFactory& factory, std::uint32_t repetitions,
    const congest::RunOutcome& reference, std::uint64_t pick_seed,
    std::uint32_t max_retries) {
  for (const unsigned jobs : {1u, 4u}) {
    congest::SupervisorConfig sup;
    sup.jobs = jobs;
    sup.early_exit = false;
    sup.max_retries = max_retries;
    sup.max_reps_per_call =
        1 + static_cast<std::uint32_t>(pick_seed % repetitions);
    const congest::Supervisor supervisor(host, cfg, sup);
    congest::SupervisedResult sr = supervisor.run(factory, repetitions);
    std::uint32_t slices = 1;
    while (sr.paused) {
      if (sr.checkpoint == nullptr || ++slices > repetitions + 1) {
        std::ostringstream os;
        os << "supervisor at --jobs " << jobs << " paused "
           << (sr.checkpoint == nullptr ? "without a checkpoint"
                                        : "more often than it has work");
        return diverge("supervised-resume", os);
      }
      sr = supervisor.resume(factory, repetitions,
                             wire_round_trip(*sr.checkpoint));
    }
    if (!(digest(sr.outcome) == digest(reference)) ||
        sr.outcome.metrics.repetitions_executed !=
            reference.metrics.repetitions_executed ||
        sr.outcome.metrics.repetitions_skipped !=
            reference.metrics.repetitions_skipped) {
      std::ostringstream os;
      os << "supervised slices of " << sup.max_reps_per_call << " at --jobs "
         << jobs << " reassembled a different aggregate (detected "
         << sr.outcome.detected << "/" << reference.detected << ", bits "
         << sr.outcome.metrics.total_bits << "/"
         << reference.metrics.total_bits << ")";
      return diverge("supervised-resume", os);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Divergence> check_case(const FuzzCase& c,
                                     CaseExpectation* expect) {
  const Graph host = build_graph(c);
  const Graph pattern = pattern_graph(c);
  const std::uint64_t n = host.num_vertices();
  for (const auto& ev : c.crashes)
    CSD_CHECK_MSG(ev.node < n, "crash event for node " << ev.node
                               << " outside the " << n << "-vertex host");

  // -- ground truth: VF2 vs the family-specific oracle ----------------------
  const bool truth = contains_subgraph(host, pattern);
  bool family_truth = false;
  switch (c.program) {
    case ProgramKind::Clique:
      family_truth = oracle::has_clique(host, c.param);
      break;
    case ProgramKind::EvenCycle:
    case ProgramKind::PipelinedCycle:
      family_truth = oracle::has_cycle_of_length(host, c.param);
      break;
    case ProgramKind::Tree:
      family_truth = oracle::has_tree(host, tree_catalog(c.param));
      break;
  }
  if (truth != family_truth) {
    std::ostringstream os;
    os << "VF2 says " << (truth ? "present" : "absent") << " but the "
       << to_string(c.program) << " oracle says "
       << (family_truth ? "present" : "absent");
    return diverge("vf2-vs-family-oracle", os);
  }
  if (expect) expect->truth = truth;

  const std::uint64_t bandwidth = effective_bandwidth(c, host);
  const std::uint64_t budget = round_budget(c, host, bandwidth);
  const congest::ProgramFactory factory = make_program(c);

  congest::NetworkConfig sync_cfg;
  sync_cfg.bandwidth = bandwidth;
  sync_cfg.max_rounds = budget;
  sync_cfg.seed = c.seed;
  sync_cfg.trace.enabled = true;

  congest::AsyncConfig async_cfg;
  async_cfg.bandwidth = bandwidth;
  async_cfg.max_pulses = budget;
  async_cfg.seed = c.seed;
  async_cfg.max_delay = c.max_delay;
  async_cfg.trace.enabled = true;

  // -- fault-free per-repetition triple-engine equivalence ------------------
  const congest::Network net(host, sync_cfg);
  obs::RunTrace merged_sync_trace;
  std::vector<congest::RunOutcome> sync_reps;
  sync_reps.reserve(c.repetitions);
  for (std::uint32_t rep = 0; rep < c.repetitions; ++rep) {
    // run_amplified's repetition seed schedule (the async CLI mirrors it).
    const std::uint64_t rep_seed = derive_seed(c.seed, 0x5eedULL + rep);
    congest::RunOutcome sync = net.run(factory, rep_seed);
    merged_sync_trace.append(sync.trace);

    for (const auto mode :
         {congest::TransportMode::Raw, congest::TransportMode::Reliable}) {
      congest::AsyncConfig cfg = async_cfg;
      cfg.seed = rep_seed;
      cfg.transport = mode;
      const congest::AsyncRunOutcome async = run_async(host, cfg, factory);
      const char* name = mode == congest::TransportMode::Raw
                             ? "async-raw"
                             : "async-reliable";
      if (async.completed != sync.completed || async.detected != sync.detected ||
          async.verdicts != sync.verdicts) {
        std::ostringstream os;
        os << name << " rep " << rep << ": sync verdicts "
           << verdicts_str(sync.verdicts) << " (completed=" << sync.completed
           << ", detected=" << sync.detected << ") vs async "
           << verdicts_str(async.verdicts) << " (completed=" << async.completed
           << ", detected=" << async.detected << ")";
        return diverge("sync-vs-async-verdicts", os);
      }
      if (async.payload_bits != sync.metrics.total_bits ||
          async.pulses != sync.metrics.rounds) {
        std::ostringstream os;
        os << name << " rep " << rep << ": payload "
           << async.payload_bits << " vs sync bits "
           << sync.metrics.total_bits << "; pulses " << async.pulses
           << " vs rounds " << sync.metrics.rounds;
        return diverge("sync-vs-async-accounting", os);
      }
      if (trace_bytes(async.trace) != trace_bytes(sync.trace)) {
        std::ostringstream os;
        os << name << " rep " << rep
           << ": per-round JSONL trace differs from the sync engine";
        return diverge("sync-vs-async-trace", os);
      }
      if (async.overhead_bits != kFrameOverheadBits * async.frames) {
        std::ostringstream os;
        os << name << " rep " << rep << ": overhead_bits "
           << async.overhead_bits << " != " << kFrameOverheadBits << " * "
           << async.frames << " frames";
        return diverge("frame-overhead-accounting", os);
      }
      if (mode == congest::TransportMode::Reliable) {
        // A fault-free reliable run charges exactly (seq + crc) per data
        // packet and per ack and never retransmits. Acks cannot exceed
        // frames (one per *delivered* packet — the run may end with the
        // final pulse's frames still in flight, so <=, not ==). With no
        // faults injected the plan-level counters must all stay at zero:
        // any duplicate packet, duplicate ack, or transport failure here
        // is accounting noise the engines invented on their own.
        const std::uint64_t expected =
            (async.frames + async.acks) * (kSeqWireBits + kCrcWireBits);
        if (async.acks > async.frames || async.faults.retransmissions != 0 ||
            async.faults.checksum_rejects != 0 ||
            async.faults.duplicate_packets != 0 ||
            async.faults.duplicate_acks != 0 ||
            async.faults.transport_failures != 0 ||
            async.transport_bits != expected) {
          std::ostringstream os;
          os << "rep " << rep << ": acks " << async.acks << " for "
             << async.frames << " frames, " << async.faults.retransmissions
             << " retransmissions, " << async.faults.duplicate_packets
             << " duplicate packets, " << async.faults.duplicate_acks
             << " duplicate acks, " << async.faults.transport_failures
             << " transport failures, transport_bits "
             << async.transport_bits << " (want " << expected << ")";
          return diverge("reliable-transport-accounting", os);
        }
      }
      if (rep == 0) {
        if (auto d = check_async_resume(host, cfg, factory, async, c.seed,
                                        name))
          return d;
      }
    }
    // -- checkpoint/kill/resume against the first repetition ----------------
    if (rep == 0) {
      congest::NetworkConfig ckpt_cfg = sync_cfg;
      ckpt_cfg.seed = rep_seed;
      if (auto d = check_sync_resume(host, ckpt_cfg, factory, sync, c.seed,
                                     "sync"))
        return d;
    }
    sync_reps.push_back(std::move(sync));
  }

  // -- one-sided error ------------------------------------------------------
  bool any_detected = false;
  for (const auto& rep : sync_reps) any_detected |= rep.detected;
  if (any_detected && !truth) {
    std::ostringstream os;
    os << to_string(c.program)
       << " rejected on a host with no copy of the pattern";
    return diverge("one-sided-error", os);
  }
  if (c.program == ProgramKind::Clique && any_detected != truth) {
    std::ostringstream os;
    os << "deterministic clique detector said "
       << (any_detected ? "present" : "absent") << ", oracle says "
       << (truth ? "present" : "absent");
    return diverge("clique-exactness", os);
  }
  if (expect) expect->detected = any_detected;

  // -- run_amplified: jobs-count determinism + aggregation ------------------
  congest::AmplifyOptions full;
  full.jobs = 1;
  full.early_exit = false;
  const congest::RunOutcome amplified =
      run_amplified(host, sync_cfg, factory, c.repetitions, full);
  for (const unsigned jobs : {4u, 0u}) {
    congest::AmplifyOptions opts = full;
    opts.jobs = jobs;
    const congest::RunOutcome other =
        run_amplified(host, sync_cfg, factory, c.repetitions, opts);
    if (other.detected != amplified.detected ||
        other.completed != amplified.completed ||
        other.verdicts != amplified.verdicts ||
        other.metrics.rounds != amplified.metrics.rounds ||
        other.metrics.messages != amplified.metrics.messages ||
        other.metrics.total_bits != amplified.metrics.total_bits ||
        other.metrics.max_message_bits != amplified.metrics.max_message_bits ||
        other.metrics.bits_sent_by_node != amplified.metrics.bits_sent_by_node ||
        !(other.faults == amplified.faults) ||
        trace_bytes(other.trace) != trace_bytes(amplified.trace)) {
      std::ostringstream os;
      os << "run_amplified at --jobs " << jobs
         << " differs from --jobs 1 (detected " << other.detected << "/"
         << amplified.detected << ", bits " << other.metrics.total_bits << "/"
         << amplified.metrics.total_bits << ")";
      return diverge("jobs-determinism", os);
    }
  }

  // -- sharded engine: bit-identical to the classic loop at every W ---------
  {
    const std::uint64_t rep_seed = derive_seed(c.seed, 0x5eedULL);
    const congest::RunOutcome& reference = sync_reps[0];
    struct ShardCell {
      std::uint32_t workers;
      congest::PartitionPolicy policy;
    };
    for (const ShardCell cell :
         {ShardCell{1, congest::PartitionPolicy::Range},
          ShardCell{2, congest::PartitionPolicy::Hash},
          ShardCell{5, congest::PartitionPolicy::Range}}) {
      congest::NetworkConfig cfg = sync_cfg;
      cfg.shard.workers = cell.workers;
      cfg.shard.policy = cell.policy;
      const congest::Network sharded_net(host, cfg);
      const congest::RunOutcome sharded = sharded_net.run(factory, rep_seed);
      if (!(digest(sharded) == digest(reference)) ||
          trace_bytes(sharded.trace) != trace_bytes(reference.trace)) {
        std::ostringstream os;
        os << "sharded engine at W=" << cell.workers << " ("
           << to_string(cell.policy) << ") differs from the classic loop "
           << "(detected " << sharded.detected << "/" << reference.detected
           << ", bits " << sharded.metrics.total_bits << "/"
           << reference.metrics.total_bits << ")";
        return diverge("shard-equivalence", os);
      }
      if (cell.workers == 2 && reference.metrics.rounds >= 2) {
        // Checkpoint/kill/resume entirely through the sharded loop...
        congest::NetworkConfig ckpt_cfg = cfg;
        ckpt_cfg.seed = rep_seed;
        if (auto d = check_sync_resume(host, ckpt_cfg, factory, reference,
                                       derive_seed(c.seed, 0x54a4dULL),
                                       "sharded"))
          return d;
        // ...and across engines: a snapshot the sharded loop captured
        // resumes on the classic one (config_digest excludes the shard
        // spec, so the identity check passes by design).
        ckpt_cfg.checkpoint_at_round =
            1 + c.seed % (reference.metrics.rounds - 1);
        const congest::Network sharded_ckpt_net(host, ckpt_cfg);
        const congest::RunOutcome observed = sharded_ckpt_net.run(factory);
        if (observed.checkpoint != nullptr) {
          const congest::RunOutcome resumed =
              net.resume(factory, *observed.checkpoint);
          if (!(digest(resumed) == digest(reference))) {
            std::ostringstream os;
            os << "classic engine resuming a sharded-loop snapshot from "
               << "round " << ckpt_cfg.checkpoint_at_round << " diverged "
               << "(bits " << resumed.metrics.total_bits << "/"
               << reference.metrics.total_bits << ")";
            return diverge("shard-cross-resume", os);
          }
        }
      }
    }
  }

  // Aggregation rules vs a hand-rolled per-repetition aggregate.
  bool agg_detected = false, agg_completed = true;
  std::uint64_t agg_rounds = 0, agg_bits = 0, agg_messages = 0;
  std::vector<congest::Verdict> agg_verdicts(host.num_vertices(),
                                             congest::Verdict::Accept);
  for (const auto& rep : sync_reps) {
    agg_detected |= rep.detected;
    agg_completed &= rep.completed;
    agg_rounds += rep.metrics.rounds;
    agg_bits += rep.metrics.total_bits;
    agg_messages += rep.metrics.messages;
    for (std::size_t v = 0; v < rep.verdicts.size(); ++v)
      if (rep.verdicts[v] == congest::Verdict::Reject)
        agg_verdicts[v] = congest::Verdict::Reject;
  }
  if (amplified.detected != agg_detected ||
      amplified.completed != agg_completed ||
      amplified.metrics.rounds != agg_rounds ||
      amplified.metrics.total_bits != agg_bits ||
      amplified.metrics.messages != agg_messages ||
      amplified.verdicts != agg_verdicts ||
      trace_bytes(amplified.trace) != trace_bytes(merged_sync_trace)) {
    std::ostringstream os;
    os << "run_amplified aggregate (detected=" << amplified.detected
       << ", rounds=" << amplified.metrics.rounds
       << ", bits=" << amplified.metrics.total_bits
       << ") != per-repetition aggregate (detected=" << agg_detected
       << ", rounds=" << agg_rounds << ", bits=" << agg_bits << ")";
    return diverge("amplified-aggregation", os);
  }

  // Early exit may skip repetitions but can never change the answer.
  congest::AmplifyOptions early;
  early.jobs = 1;
  early.early_exit = true;
  const congest::RunOutcome exited =
      run_amplified(host, sync_cfg, factory, c.repetitions, early);
  if (exited.detected != amplified.detected ||
      exited.metrics.repetitions_executed +
              exited.metrics.repetitions_skipped !=
          c.repetitions) {
    std::ostringstream os;
    os << "early-exit amplification: detected " << exited.detected << " vs "
       << amplified.detected << ", executed "
       << exited.metrics.repetitions_executed << " + skipped "
       << exited.metrics.repetitions_skipped << " != " << c.repetitions;
    return diverge("early-exit", os);
  }

  // Supervisor in slices (pause via max_reps_per_call, resume from the
  // amplified checkpoint) must reassemble the uninterrupted aggregate at
  // every --jobs count.
  if (c.repetitions >= 2) {
    if (auto d = check_supervised_resume(host, sync_cfg, factory,
                                         c.repetitions, amplified, c.seed,
                                         /*max_retries=*/0))
      return d;
  }

  if (!c.has_faults()) return std::nullopt;

  // -- faulty runs: determinism + reliable-transport recovery ---------------
  const congest::FaultPlan plan = fault_plan(c);

  congest::NetworkConfig faulty_sync = sync_cfg;
  faulty_sync.faults = plan;
  const congest::Network faulty_net(host, faulty_sync);
  const congest::RunOutcome s1 = faulty_net.run(factory);
  const congest::RunOutcome s2 = faulty_net.run(factory);
  if (s1.detected != s2.detected || s1.completed != s2.completed ||
      s1.verdicts != s2.verdicts ||
      s1.metrics.total_bits != s2.metrics.total_bits ||
      !(s1.faults == s2.faults)) {
    std::ostringstream os;
    os << "sync engine under faults is not deterministic (detected "
       << s1.detected << "/" << s2.detected << ")";
    return diverge("faulty-sync-determinism", os);
  }
  // The sharded loop must reproduce the faulty run too: fault fates are
  // per-link RNG streams, so the worker count cannot change a single fate.
  {
    congest::NetworkConfig faulty_shard_cfg = faulty_sync;
    faulty_shard_cfg.shard.workers = 3;
    faulty_shard_cfg.shard.policy = congest::PartitionPolicy::Hash;
    const congest::Network faulty_sharded_net(host, faulty_shard_cfg);
    const congest::RunOutcome s3 = faulty_sharded_net.run(factory);
    if (!(digest(s3) == digest(s1)) ||
        trace_bytes(s3.trace) != trace_bytes(s1.trace)) {
      std::ostringstream os;
      os << "sharded engine under faults differs from the classic loop "
         << "(detected " << s3.detected << "/" << s1.detected << ", dropped "
         << s3.faults.frames_dropped << "/" << s1.faults.frames_dropped
         << ")";
      return diverge("shard-fault-equivalence", os);
    }
  }
  if (s1.faults.crashed_nodes.empty() &&
      s1.faults.detected_by_survivors != s1.detected) {
    std::ostringstream os;
    os << "sync: no node crashed but detected_by_survivors "
       << s1.faults.detected_by_survivors << " != detected " << s1.detected;
    return diverge("survivor-verdict", os);
  }
  // The resume contract holds under injected faults too: the snapshot
  // carries the fault-stream RNG states and the partial FaultReport.
  if (auto d = check_sync_resume(host, faulty_sync, factory, s1,
                                 derive_seed(c.seed, 0xC4), "faulty-sync"))
    return d;

  for (const auto mode :
       {congest::TransportMode::Raw, congest::TransportMode::Reliable}) {
    congest::AsyncConfig cfg = async_cfg;
    cfg.faults = plan;
    cfg.transport = mode;
    const congest::AsyncRunOutcome a1 = run_async(host, cfg, factory);
    const congest::AsyncRunOutcome a2 = run_async(host, cfg, factory);
    const char* name = mode == congest::TransportMode::Raw
                           ? "async-raw"
                           : "async-reliable";
    if (!(digest(a1) == digest(a2))) {
      std::ostringstream os;
      os << name << " under faults is not deterministic (pulses " << a1.pulses
         << "/" << a2.pulses << ", payload " << a1.payload_bits << "/"
         << a2.payload_bits << ")";
      return diverge("faulty-async-determinism", os);
    }
    if (a1.overhead_bits != kFrameOverheadBits * a1.frames) {
      std::ostringstream os;
      os << name << " under faults: overhead_bits " << a1.overhead_bits
         << " != " << kFrameOverheadBits << " * " << a1.frames << " frames";
      return diverge("frame-overhead-accounting", os);
    }
    if (a1.faults.crashed_nodes.empty() &&
        a1.faults.detected_by_survivors != a1.detected) {
      std::ostringstream os;
      os << name << ": no node crashed but detected_by_survivors "
         << a1.faults.detected_by_survivors << " != detected " << a1.detected;
      return diverge("survivor-verdict", os);
    }
    // One-sided error survives faults under Reliable (the CRC shields the
    // programs from corrupted payloads) and under Raw as long as nothing
    // was corrupted (drops/crashes only silence nodes).
    const bool shielded =
        mode == congest::TransportMode::Reliable || c.corrupt == 0.0;
    if (shielded && a1.detected && !truth) {
      std::ostringstream os;
      os << name << " rejected on a host with no copy of the pattern";
      return diverge("one-sided-error-under-faults", os);
    }
    if (mode == congest::TransportMode::Reliable &&
        a1.faults.crashed_nodes.empty() && a1.faults.transport_failures == 0) {
      // No node fell silent and no packet exhausted its retries, so the
      // ARQ must have healed every fault: the run completes and reproduces
      // the fault-free sync execution exactly. A stall here means a
      // corrupted packet slipped past the CRC into the synchronizer.
      if (!a1.completed) {
        std::ostringstream os;
        os << "reliable run stalled (pulses " << a1.pulses << ", "
           << a1.faults.stalled_nodes.size()
           << " stalled nodes) without crashes or transport failures";
        return diverge("reliable-recovery", os);
      }
      const congest::RunOutcome clean = net.run(factory);
      if (a1.verdicts != clean.verdicts || a1.detected != clean.detected ||
          a1.payload_bits != clean.metrics.total_bits) {
        std::ostringstream os;
        os << "reliable transport healed all faults but verdicts "
           << verdicts_str(a1.verdicts) << " != fault-free sync "
           << verdicts_str(clean.verdicts) << " (payload " << a1.payload_bits
           << " vs " << clean.metrics.total_bits << ")";
        return diverge("reliable-recovery", os);
      }
    }
    if (auto d = check_async_resume(host, cfg, factory, a1,
                                    derive_seed(c.seed, 0xC5), name))
      return d;
  }

  // -- node recovery oracle -------------------------------------------------
  // With scheduled crashes, reliable transport, and the recovery policy on,
  // every crashed node rejoins and replays its logged history. When no
  // conversation exhausted its retry budget the healed run must complete and
  // land on the fault-free verdicts — the crash was fully masked.
  if (!c.crashes.empty()) {
    congest::AsyncConfig rec = async_cfg;
    rec.faults = plan;
    rec.transport = congest::TransportMode::Reliable;
    rec.recovery.enabled = true;
    const congest::AsyncRunOutcome h1 = run_async(host, rec, factory);
    const congest::AsyncRunOutcome h2 = run_async(host, rec, factory);
    if (!(digest(h1) == digest(h2))) {
      std::ostringstream os;
      os << "recovery-enabled run is not deterministic (pulses " << h1.pulses
         << "/" << h2.pulses << ", replayed " << h1.faults.replayed_pulses
         << "/" << h2.faults.replayed_pulses << ")";
      return diverge("recovery-determinism", os);
    }
    if (h1.faults.transport_failures == 0) {
      auto crashed = h1.faults.crashed_nodes;
      auto recovered = h1.faults.recovered_nodes;
      std::sort(crashed.begin(), crashed.end());
      std::sort(recovered.begin(), recovered.end());
      if (recovered != crashed) {
        std::ostringstream os;
        os << "recovery left " << crashed.size() - recovered.size() << " of "
           << crashed.size() << " crashed nodes dead with retry budget to "
           << "spare";
        return diverge("recovery-oracle", os);
      }
      if (!h1.completed) {
        std::ostringstream os;
        os << "all " << crashed.size() << " crashed nodes rejoined but the "
           << "run still stalled at pulse " << h1.pulses;
        return diverge("recovery-oracle", os);
      }
      const congest::RunOutcome clean = net.run(factory);
      if (h1.verdicts != clean.verdicts || h1.detected != clean.detected) {
        std::ostringstream os;
        os << "recovered run verdicts " << verdicts_str(h1.verdicts)
           << " != fault-free sync " << verdicts_str(clean.verdicts)
           << " (replayed " << h1.faults.replayed_pulses << " pulses)";
        return diverge("recovery-oracle", os);
      }
    }
    // Checkpoint/resume composes with recovery: a snapshot taken while a
    // rejoin is pending restores the parked timers and the rejoin event.
    if (auto d = check_async_resume(host, rec, factory, h1,
                                    derive_seed(c.seed, 0xC6),
                                    "async-recovery"))
      return d;
  }

  // Supervised slice-resume stays bit-identical under faults as well: the
  // retry ledger and fault report ride in the amplified snapshot.
  if (c.repetitions >= 2) {
    congest::SupervisorConfig ref_sup;
    ref_sup.jobs = 1;
    ref_sup.early_exit = false;
    ref_sup.max_retries = 1;
    const congest::Supervisor supervisor(host, faulty_sync, ref_sup);
    const congest::SupervisedResult ref =
        supervisor.run(factory, c.repetitions);
    if (auto d = check_supervised_resume(host, faulty_sync, factory,
                                         c.repetitions, ref.outcome,
                                         derive_seed(c.seed, 0xC7),
                                         ref_sup.max_retries))
      return d;
  }

  return std::nullopt;
}

}  // namespace csd::fuzz
