#include "support/combinatorics.hpp"

#include <limits>

namespace csd {

namespace {
constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();
__extension__ typedef unsigned __int128 Wide;
}  // namespace

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  Wide result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // Prefix products C(n-k+i, i) are integers, so divide-after-multiply is
    // exact; 128-bit intermediate avoids overflow, with saturation at 2^64-1.
    result = result * (n - k + i) / i;
    if (result > kSat) return kSat;
  }
  return static_cast<std::uint64_t>(result);
}

std::vector<std::uint32_t> unrank_k_subset(std::uint64_t rank, std::uint32_t m,
                                           std::uint32_t k) {
  CSD_CHECK_MSG(k <= m, "k-subset of [m] requires k <= m");
  CSD_CHECK_MSG(rank < binomial(m, k), "rank out of range");
  // Colexicographic unranking: choose the largest element first.
  std::vector<std::uint32_t> out(k);
  std::uint64_t r = rank;
  std::uint32_t remaining = k;
  while (remaining > 0) {
    // Largest c with C(c, remaining) <= r.
    std::uint32_t c = remaining - 1;
    while (binomial(c + 1, remaining) <= r) ++c;
    out[remaining - 1] = c;
    r -= binomial(c, remaining);
    --remaining;
  }
  return out;
}

std::uint64_t rank_k_subset(const std::vector<std::uint32_t>& subset,
                            std::uint32_t m) {
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    CSD_CHECK_MSG(subset[i] < m, "subset element out of range");
    if (i > 0) CSD_CHECK_MSG(subset[i] > subset[i - 1], "subset not increasing");
    r += binomial(subset[i], static_cast<std::uint64_t>(i) + 1);
  }
  return r;
}

}  // namespace csd
