// Combinatorial utilities: binomial coefficients and the combinatorial
// number system (ranking/unranking of k-subsets).
//
// The G_{k,n} lower-bound family (§3.2) encodes each endpoint index
// i ∈ [n] as a distinct k-subset Q_i of [m], m = k⌈n^{1/k}⌉; we realize that
// encoding with colexicographic unranking.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace csd {

/// C(n, k) with saturation at UINT64_MAX (no overflow UB).
std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept;

/// The `rank`-th k-subset of {0,...,m-1} in colexicographic order.
/// rank ∈ [0, C(m,k)); elements returned in increasing order.
std::vector<std::uint32_t> unrank_k_subset(std::uint64_t rank, std::uint32_t m,
                                           std::uint32_t k);

/// Inverse of unrank_k_subset; `subset` must be strictly increasing, ⊂ [0,m).
std::uint64_t rank_k_subset(const std::vector<std::uint32_t>& subset,
                            std::uint32_t m);

/// Enumerate all k-subsets of {0,...,m-1} in lexicographic order, invoking
/// `fn(subset)` for each. Fn: void(const std::vector<std::uint32_t>&).
template <typename Fn>
void for_each_k_subset(std::uint32_t m, std::uint32_t k, Fn&& fn) {
  if (k > m) return;
  std::vector<std::uint32_t> idx(k);
  for (std::uint32_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    fn(const_cast<const std::vector<std::uint32_t>&>(idx));
    // Advance to next lexicographic combination.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] ==
                         m - k + static_cast<std::uint32_t>(i))
      --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j)
      idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace csd
