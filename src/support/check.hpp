// Lightweight always-on invariant checking.
//
// CSD_CHECK is used for conditions that must hold even in release builds
// (protocol invariants, construction well-formedness); CSD_DCHECK compiles
// out in NDEBUG builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace csd {

/// Thrown when an internal invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace csd

#define CSD_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::csd::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CSD_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream csd_check_os_;                              \
      csd_check_os_ << msg;                                          \
      ::csd::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  csd_check_os_.str());              \
    }                                                                \
  } while (false)

#ifdef NDEBUG
#define CSD_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define CSD_DCHECK(expr) CSD_CHECK(expr)
#endif
