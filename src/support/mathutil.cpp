#include "support/mathutil.hpp"

#include <limits>

#include "support/check.hpp"

namespace csd {

namespace {
constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();
__extension__ typedef unsigned __int128 Wide;
}

std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) noexcept {
  Wide r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    r *= base;
    if (r > kSat) return kSat;
  }
  return static_cast<std::uint64_t>(r);
}

std::uint64_t floor_kth_root(std::uint64_t n, std::uint32_t k) noexcept {
  CSD_DCHECK(k >= 1);
  if (k == 1 || n <= 1) return n;
  // Binary search on r in [1, n]: largest r with r^k <= n.
  std::uint64_t lo = 1, hi = n;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (ipow(mid, k) <= n)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

std::uint64_t ceil_kth_root(std::uint64_t n, std::uint32_t k) noexcept {
  if (n == 0) return 0;
  const std::uint64_t f = floor_kth_root(n, k);
  return ipow(f, k) == n ? f : f + 1;
}

std::uint32_t ceil_log2(std::uint64_t n) noexcept {
  CSD_DCHECK(n >= 1);
  std::uint32_t b = 0;
  while ((1ULL << b) < n) ++b;
  return b;
}

std::uint64_t ceil_pow_ratio(std::uint64_t n, std::uint32_t p,
                             std::uint32_t q) noexcept {
  CSD_DCHECK(q >= 1);
  const std::uint64_t np = ipow(n, p);
  if (np == kSat) return kSat;  // saturated; callers use small n
  return ceil_kth_root(np, q);
}

std::uint64_t even_cycle_edge_bound(std::uint64_t n, std::uint32_t k,
                                    std::uint64_t c_num,
                                    std::uint64_t c_den) noexcept {
  CSD_DCHECK(k >= 2 && c_den > 0);
  // n^{1+1/k} = n * n^{1/k}; use exact integer ⌈n^{1/k}⌉ then scale by c.
  const std::uint64_t root = ceil_kth_root(n, k);
  Wide m = static_cast<Wide>(n) * root;
  m = (m * c_num + c_den - 1) / c_den;
  if (m > kSat) return kSat;
  return static_cast<std::uint64_t>(m);
}

}  // namespace csd
