#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace csd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CSD_CHECK(!headers_.empty());
}

Table& Table::row() {
  CSD_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
                "previous row incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  CSD_CHECK_MSG(!rows_.empty() && rows_.back().size() < headers_.size(),
                "cell without row, or row overfull");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(bool value) { return cell(value ? "yes" : "no"); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << std::setw(static_cast<int>(width[c])) << v;
      os << (c + 1 < headers_.size() ? " | " : " |");
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

void print_banner(std::ostream& os, const std::string& title,
                  const std::string& subtitle) {
  os << '\n' << std::string(72, '=') << '\n' << title << '\n';
  if (!subtitle.empty()) os << subtitle << '\n';
  os << std::string(72, '=') << '\n';
}

}  // namespace csd
