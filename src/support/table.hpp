// Plain-text table printer used by the benchmark harnesses to emit the
// paper-reproduction tables (one bench binary per figure/theorem).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace csd {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// consistently. Rendered with a header rule, right-aligned numeric look.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  /// "yes"/"no" cell.
  Table& cell(bool value);
  /// Any integer type.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Table& cell(T value) {
    return cell(std::to_string(value));
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render to `os` with aligned columns.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for a bench harness.
void print_banner(std::ostream& os, const std::string& title,
                  const std::string& subtitle = "");

}  // namespace csd
