// Dynamic bit vector.
//
// Used (a) as the payload representation for CONGEST messages, where cost is
// accounted in bits, and (b) as a dense set representation in the §4 fooling
// search, which intersects large ID sets.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace csd {

class BitVec {
 public:
  BitVec() = default;

  /// A bit vector of `n` bits, all initialized to `value`.
  explicit BitVec(std::size_t n, bool value = false)
      : bits_(n), words_((n + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const noexcept { return bits_; }
  bool empty() const noexcept { return bits_ == 0; }

  bool get(std::size_t i) const noexcept {
    CSD_DCHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool v = true) noexcept {
    CSD_DCHECK(i < bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void push_back(bool v) {
    if ((bits_ & 63) == 0) words_.push_back(0);
    ++bits_;
    set(bits_ - 1, v);
  }

  /// Append the low `width` bits of `value`, least-significant bit first.
  void append_bits(std::uint64_t value, unsigned width) {
    CSD_CHECK(width <= 64);
    for (unsigned b = 0; b < width; ++b) push_back((value >> b) & 1ULL);
  }

  /// Read `width` bits starting at `pos`, least-significant bit first.
  std::uint64_t read_bits(std::size_t pos, unsigned width) const {
    CSD_CHECK(width <= 64 && pos + width <= bits_);
    std::uint64_t v = 0;
    for (unsigned b = 0; b < width; ++b)
      v |= static_cast<std::uint64_t>(get(pos + b)) << b;
    return v;
  }

  /// Append another bit vector's contents.
  void append(const BitVec& other) {
    for (std::size_t i = 0; i < other.size(); ++i) push_back(other.get(i));
  }

  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  void clear() noexcept {
    bits_ = 0;
    words_.clear();
  }

  /// Keep only the first `n` bits. No-op when `n >= size()`. Used by the
  /// engines to clamp over-bandwidth payloads instead of aborting the run.
  void truncate(std::size_t n) noexcept {
    if (n >= bits_) return;
    bits_ = n;
    words_.resize((n + 63) / 64);
    trim();
  }

  /// Flip bit `i` in place (fault injection: payload corruption).
  void flip(std::size_t i) noexcept {
    CSD_DCHECK(i < bits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  /// In-place intersection; both vectors must have equal size.
  BitVec& operator&=(const BitVec& other) {
    CSD_CHECK(bits_ == other.bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }

  BitVec& operator|=(const BitVec& other) {
    CSD_CHECK(bits_ == other.bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  bool operator==(const BitVec& other) const noexcept {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  bool any() const noexcept {
    for (const auto w : words_)
      if (w != 0) return true;
    return false;
  }

  /// Index of the first set bit at or after `from`; size() if none.
  std::size_t find_next(std::size_t from) const noexcept {
    for (std::size_t i = from; i < bits_; ++i)
      if (get(i)) return i;
    return bits_;
  }

  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Stable 64-bit content hash (FNV-1a over words + size).
  std::uint64_t hash() const noexcept {
    std::uint64_t h = 1469598103934665603ULL ^ bits_;
    for (const auto w : words_) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  void trim() noexcept {
    if (bits_ & 63) {
      const std::uint64_t mask = (1ULL << (bits_ & 63)) - 1;
      if (!words_.empty()) words_.back() &= mask;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace csd
