// Dynamic bit vector.
//
// Used (a) as the payload representation for CONGEST messages, where cost is
// accounted in bits, and (b) as a dense set representation in the §4 fooling
// search and the detection-layer candidate checks, which intersect large ID
// sets. All bulk operations (append, splice, count, search, intersect) work
// on whole 64-bit words, never bit by bit.
//
// Invariant: bits past `size()` in the last storage word are always zero
// (`trim()`), so `==`, `hash()`, `count()` and the word-parallel scans can
// operate on raw words without masking.
//
// Equal-size contract: the set-algebra operations (`operator&=`,
// `operator|=`, `intersect_count`, `intersect_into`) require both operands
// to have exactly equal `size()` and CSD_CHECK it; mixing sizes is a logic
// error in the caller, not something to silently zero-extend.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace csd {

class BitVec {
 public:
  BitVec() = default;

  /// A bit vector of `n` bits, all initialized to `value`.
  explicit BitVec(std::size_t n, bool value = false)
      : bits_(n), words_((n + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const noexcept { return bits_; }
  bool empty() const noexcept { return bits_ == 0; }

  bool get(std::size_t i) const noexcept {
    CSD_DCHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool v = true) noexcept {
    CSD_DCHECK(i < bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void push_back(bool v) {
    if ((bits_ & 63) == 0) words_.push_back(0);
    ++bits_;
    set(bits_ - 1, v);
  }

  /// Append the low `width` bits of `value`, least-significant bit first.
  /// Splices into at most two storage words.
  void append_bits(std::uint64_t value, unsigned width) {
    CSD_CHECK(width <= 64);
    if (width == 0) return;
    if (width < 64) value &= (1ULL << width) - 1;
    const unsigned shift = bits_ & 63;
    if (shift == 0) {
      words_.push_back(value);
    } else {
      words_.back() |= value << shift;
      if (shift + width > 64) words_.push_back(value >> (64 - shift));
    }
    bits_ += width;
  }

  /// Read `width` bits starting at `pos`, least-significant bit first.
  std::uint64_t read_bits(std::size_t pos, unsigned width) const {
    CSD_CHECK(width <= 64 && pos + width <= bits_);
    if (width == 0) return 0;
    const std::size_t wi = pos >> 6;
    const unsigned off = static_cast<unsigned>(pos & 63);
    std::uint64_t v = words_[wi] >> off;
    if (off + width > 64) v |= words_[wi + 1] << (64 - off);
    if (width < 64) v &= (1ULL << width) - 1;
    return v;
  }

  /// Append another bit vector's contents (word-wise shift-or splice).
  /// `other` must not alias `*this`.
  void append(const BitVec& other) {
    CSD_CHECK(this != &other);
    if (other.bits_ == 0) return;
    const unsigned shift = bits_ & 63;
    const std::size_t new_bits = bits_ + other.bits_;
    const std::size_t new_words = (new_bits + 63) / 64;
    words_.reserve(new_words);
    if (shift == 0) {
      words_.insert(words_.end(), other.words_.begin(), other.words_.end());
    } else {
      const unsigned inv = 64 - shift;
      for (const std::uint64_t w : other.words_) {
        words_.back() |= w << shift;
        words_.push_back(w >> inv);
      }
      words_.resize(new_words);  // drop the spill word when it holds no bits
    }
    bits_ = new_bits;
  }

  /// Copy `other`'s contents into this vector, reusing retained capacity
  /// (no allocation when this vector has held a payload at least as large).
  void assign(const BitVec& other) {
    bits_ = other.bits_;
    words_.assign(other.words_.begin(), other.words_.end());
  }

  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto w : words_) c += static_cast<std::size_t>(popcount64(w));
    return c;
  }

  void clear() noexcept {
    bits_ = 0;
    words_.clear();
  }

  /// Keep only the first `n` bits. No-op when `n >= size()`. Used by the
  /// engines to clamp over-bandwidth payloads instead of aborting the run.
  void truncate(std::size_t n) noexcept {
    if (n >= bits_) return;
    bits_ = n;
    words_.resize((n + 63) / 64);
    trim();
  }

  /// Flip bit `i` in place (fault injection: payload corruption).
  void flip(std::size_t i) noexcept {
    CSD_DCHECK(i < bits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  /// In-place intersection; equal-size contract (see file comment).
  BitVec& operator&=(const BitVec& other) {
    CSD_CHECK(bits_ == other.bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }

  /// In-place union; equal-size contract (see file comment).
  BitVec& operator|=(const BitVec& other) {
    CSD_CHECK(bits_ == other.bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  bool operator==(const BitVec& other) const noexcept {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  bool any() const noexcept {
    for (const auto w : words_)
      if (w != 0) return true;
    return false;
  }

  /// Index of the first set bit at or after `from`; size() if none.
  /// Word-parallel: skips zero words, then counts trailing zeros.
  std::size_t find_next(std::size_t from) const noexcept {
    if (from >= bits_) return bits_;
    std::size_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
    while (w == 0) {
      if (++wi == words_.size()) return bits_;
      w = words_[wi];
    }
    // trim() keeps the tail zeroed, so the hit is always a valid index.
    return (wi << 6) + static_cast<std::size_t>(countr_zero64(w));
  }

  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Stable 64-bit content hash (FNV-1a over words + size).
  std::uint64_t hash() const noexcept {
    std::uint64_t h = 1469598103934665603ULL ^ bits_;
    for (const auto w : words_) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return h;
  }

  friend std::size_t intersect_count(const BitVec& a, const BitVec& b);
  friend void intersect_into(BitVec& dst, const BitVec& a, const BitVec& b);

 private:
  void trim() noexcept {
    if (bits_ & 63) {
      const std::uint64_t mask = (1ULL << (bits_ & 63)) - 1;
      if (!words_.empty()) words_.back() &= mask;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// |a ∩ b| without materializing the intersection; equal-size contract.
inline std::size_t intersect_count(const BitVec& a, const BitVec& b) {
  CSD_CHECK(a.bits_ == b.bits_);
  std::size_t c = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w)
    c += static_cast<std::size_t>(popcount64(a.words_[w] & b.words_[w]));
  return c;
}

/// dst = a ∩ b in one pass; equal-size contract on `a` and `b`. `dst` is
/// resized to match and may alias either operand.
inline void intersect_into(BitVec& dst, const BitVec& a, const BitVec& b) {
  CSD_CHECK(a.bits_ == b.bits_);
  dst.bits_ = a.bits_;
  dst.words_.resize(a.words_.size());
  for (std::size_t w = 0; w < a.words_.size(); ++w)
    dst.words_[w] = a.words_[w] & b.words_[w];
}

/// Invoke `fn(index)` for every set bit in ascending order, iterating whole
/// 64-bit words (the Korhonen–Rybicki broadcast-CONGEST idiom: candidate
/// sets are walked word-at-a-time, not bit-at-a-time).
template <typename Fn>
inline void for_each_set(const BitVec& v, Fn&& fn) {
  const auto& words = v.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(countr_zero64(w));
      fn((wi << 6) + bit);
      w &= w - 1;
    }
  }
}

}  // namespace csd
