// Prefix-free bit-level serialization.
//
// CONGEST message cost is accounted in *bits*, so algorithm payloads are
// encoded with explicit widths rather than bytes. All encodings here are
// self-delimiting when the reader knows the schema (fixed widths) or via
// varints (unary-length-prefixed), which is exactly the prefix-code property
// that the §4 transcript argument requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bitvec.hpp"
#include "support/check.hpp"

namespace csd::wire {

/// Number of bits needed to represent values in [0, n), minimum 1.
constexpr unsigned bits_for(std::uint64_t n) noexcept {
  unsigned b = 1;
  while (b < 64 && (1ULL << b) < n) ++b;
  return b;
}

/// Bit-level writer over an owned BitVec.
class Writer {
 public:
  Writer() = default;

  /// Start from a recycled buffer (e.g. congest::NodeApi::scratch()): the
  /// contents are cleared but the heap capacity is reused, which removes the
  /// per-message allocation in hot per-round send loops.
  explicit Writer(BitVec scratch) : bits_(std::move(scratch)) {
    bits_.clear();
  }

  /// Fixed-width unsigned field.
  void u(std::uint64_t value, unsigned width) {
    CSD_CHECK_MSG(width == 64 || value < (1ULL << width),
                  "value " << value << " does not fit in " << width << " bits");
    bits_.append_bits(value, width);
  }

  void boolean(bool v) { bits_.push_back(v); }

  /// Variable-width unsigned field: unary length prefix in 7-bit groups
  /// (classic varint lifted to the bit level; prefix-free).
  void varint(std::uint64_t value) {
    do {
      const std::uint64_t group = value & 0x7f;
      value >>= 7;
      bits_.push_back(value != 0);  // continuation bit
      bits_.append_bits(group, 7);
    } while (value != 0);
  }

  /// Raw bit run copied verbatim.
  void raw(const BitVec& v) { bits_.append(v); }

  std::size_t bit_size() const noexcept { return bits_.size(); }
  const BitVec& bits() const noexcept { return bits_; }
  BitVec take() && { return std::move(bits_); }

 private:
  BitVec bits_;
};

/// Bit-level reader; throws CheckFailure on truncated input.
class Reader {
 public:
  explicit Reader(const BitVec& bits) : bits_(bits) {}

  std::uint64_t u(unsigned width) {
    CSD_CHECK_MSG(pos_ + width <= bits_.size(), "wire read past end");
    const std::uint64_t v = bits_.read_bits(pos_, width);
    pos_ += width;
    return v;
  }

  bool boolean() { return u(1) != 0; }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    bool more = true;
    while (more) {
      CSD_CHECK_MSG(pos_ + 8 <= bits_.size(), "wire read past end (varint)");
      more = bits_.get(pos_);
      const std::uint64_t group = bits_.read_bits(pos_ + 1, 7);
      pos_ += 8;
      CSD_CHECK_MSG(shift < 64, "varint overflow");
      v |= group << shift;
      shift += 7;
    }
    return v;
  }

  BitVec raw(std::size_t nbits) {
    CSD_CHECK_MSG(pos_ + nbits <= bits_.size(), "wire read past end (raw)");
    BitVec out;
    for (std::size_t i = 0; i < nbits; ++i) out.push_back(bits_.get(pos_ + i));
    pos_ += nbits;
    return out;
  }

  std::size_t remaining() const noexcept { return bits_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == bits_.size(); }
  std::size_t position() const noexcept { return pos_; }

 private:
  const BitVec& bits_;
  std::size_t pos_ = 0;
};

}  // namespace csd::wire
