// Integer math helpers shared across the library: powers, roots, logs, and
// the Turán-number bounds that parameterize the §6 algorithm.
#pragma once

#include <cstdint>

namespace csd {

/// base^exp with saturation at UINT64_MAX.
std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) noexcept;

/// ⌈n^{1/k}⌉ — smallest r with r^k >= n. Requires k >= 1.
std::uint64_t ceil_kth_root(std::uint64_t n, std::uint32_t k) noexcept;

/// ⌊n^{1/k}⌋ — largest r with r^k <= n. Requires k >= 1.
std::uint64_t floor_kth_root(std::uint64_t n, std::uint32_t k) noexcept;

/// ⌈log2(n)⌉ for n >= 1 (returns 0 for n == 1).
std::uint32_t ceil_log2(std::uint64_t n) noexcept;

/// ⌈a / b⌉ for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// ⌈c · n^{1+1/k}⌉: the Turán-style edge bound M used by the C_2k detector
/// (ex(n, C_2k) = O(n^{1+1/k}), Bondy–Simonovits / Bukh–Jiang). `c_num/c_den`
/// is the leading constant as a rational, so results are deterministic.
std::uint64_t even_cycle_edge_bound(std::uint64_t n, std::uint32_t k,
                                    std::uint64_t c_num = 1,
                                    std::uint64_t c_den = 1) noexcept;

/// n^{p/q} rounded up, computed exactly in integers: ⌈(n^p)^{1/q}⌉.
std::uint64_t ceil_pow_ratio(std::uint64_t n, std::uint32_t p,
                             std::uint32_t q) noexcept;

}  // namespace csd
