#include "support/rng.hpp"

#include <unordered_set>

namespace csd {

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  CSD_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
  if (k == 0) return {};
  // For dense samples a partial Fisher–Yates is cheapest; for sparse ones a
  // hash-based rejection avoids materializing [0, n).
  if (k * 4 >= n) {
    auto p = permutation(n);
    p.resize(k);
    return p;
  }
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(below(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace csd
