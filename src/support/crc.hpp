// Bit-level CRC-32 (IEEE 802.3, reflected).
//
// CONGEST payloads are bit strings, not byte strings, so the checksum is
// computed bit-by-bit over the exact payload length. The reliable-transport
// layer (congest/transport.*) appends this CRC to every data packet; a CRC
// mismatch marks the packet as corrupted and it is treated like a loss
// (discard + retransmit). CRC-32 detects every single-bit error, which is
// exactly the fault model of FaultPlan::corrupt (one flipped payload bit
// per corrupted frame).
#pragma once

#include <cstdint>

#include "support/bitvec.hpp"

namespace csd {

/// CRC-32 running state. Feed bits (LSB-first within each logical field,
/// matching the wire::Writer bit order), then read `value()`.
class Crc32 {
 public:
  void bit(bool b) noexcept {
    const std::uint32_t in = static_cast<std::uint32_t>(b);
    const std::uint32_t mix = (state_ ^ in) & 1u;
    state_ >>= 1;
    if (mix) state_ ^= kPolynomial;
  }

  void bits(std::uint64_t value, unsigned width) noexcept {
    for (unsigned i = 0; i < width; ++i) bit((value >> i) & 1ULL);
  }

  void raw(const BitVec& v) noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) bit(v.get(i));
  }

  std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }

 private:
  static constexpr std::uint32_t kPolynomial = 0xedb88320u;
  std::uint32_t state_ = 0xffffffffu;
};

/// CRC-32 of a whole bit vector (bits in index order).
inline std::uint32_t crc32_bits(const BitVec& v) noexcept {
  Crc32 crc;
  crc.raw(v);
  return crc.value();
}

}  // namespace csd
