// Portable 64-bit word primitives.
//
// The simulator's hot paths (payload splicing, candidate-set intersection,
// first-set iteration) all reduce to popcount / count-trailing-zeros on
// 64-bit words. Standard library <bit> covers both since C++20; the wrappers
// here pick std::popcount / std::countr_zero when the feature-test macro says
// they exist and otherwise fall back to compiler builtins, with a last-resort
// portable loop so the code keeps compiling on toolchains with neither.
#pragma once

#include <cstdint>

#if defined(__cpp_lib_bitops) || (defined(__has_include) && __has_include(<bit>))
#include <bit>
#define CSD_HAS_STD_BITOPS 1
#endif

namespace csd {

inline int popcount64(std::uint64_t w) noexcept {
#if defined(CSD_HAS_STD_BITOPS) && defined(__cpp_lib_bitops)
  return std::popcount(w);
#elif defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(w);
#else
  int c = 0;
  while (w != 0) {
    w &= w - 1;
    ++c;
  }
  return c;
#endif
}

/// Number of trailing zero bits; 64 when `w == 0`.
inline int countr_zero64(std::uint64_t w) noexcept {
#if defined(CSD_HAS_STD_BITOPS) && defined(__cpp_lib_bitops)
  return std::countr_zero(w);
#elif defined(__GNUC__) || defined(__clang__)
  return w == 0 ? 64 : __builtin_ctzll(w);
#else
  if (w == 0) return 64;
  int c = 0;
  while ((w & 1ULL) == 0) {
    w >>= 1;
    ++c;
  }
  return c;
#endif
}

/// Number of bits needed to represent `w`; 0 when `w == 0`.
inline int bit_width64(std::uint64_t w) noexcept {
#if defined(CSD_HAS_STD_BITOPS) && defined(__cpp_lib_int_pow2)
  return static_cast<int>(std::bit_width(w));
#elif defined(__GNUC__) || defined(__clang__)
  return w == 0 ? 0 : 64 - __builtin_clzll(w);
#else
  int b = 0;
  while (w != 0) {
    w >>= 1;
    ++b;
  }
  return b;
#endif
}

}  // namespace csd
