// Deterministic, splittable random number generation.
//
// Every randomized component of the library draws from an explicit 64-bit
// seed. Per-node generators are derived with splitmix64 so that experiments
// are reproducible bit-for-bit regardless of execution order.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/check.hpp"

namespace csd {

/// splitmix64 step: maps a seed to a well-mixed 64-bit value. Used both as a
/// stream splitter and to seed xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent child seed from (seed, stream-id).
constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                    std::uint64_t stream) noexcept {
  std::uint64_t s = seed ^ (0x517cc1b727220a95ULL * (stream + 1));
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdeadbeefULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Lemire-style rejection; unbiased.
  std::uint64_t below(std::uint64_t bound) noexcept {
    CSD_DCHECK(bound > 0);
    // Rejection sampling on the top bits to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    CSD_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    CSD_DCHECK(den > 0 && num <= den);
    return below(den) < num;
  }

  /// Fair coin.
  bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> p(n);
    for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
    for (std::uint32_t i = n; i > 1; --i) {
      const auto j = static_cast<std::uint32_t>(below(i));
      std::swap(p[i - 1], p[j]);
    }
    return p;
  }

  /// Sample k distinct values from {0, ..., n-1} (order randomized).
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// The raw xoshiro256** state, for snapshot/resume. A generator restored
  /// with set_state produces the exact draw sequence the saved one would
  /// have produced.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace csd
