#include "graph/graph.hpp"

#include <algorithm>

namespace csd {

std::vector<std::pair<Vertex, Vertex>> Graph::edges() const {
  std::vector<std::pair<Vertex, Vertex>> out;
  out.reserve(num_edges_);
  for (Vertex u = 0; u < num_vertices(); ++u)
    for (const Vertex v : adj_[u])
      if (u < v) out.emplace_back(u, v);
  std::sort(out.begin(), out.end());
  return out;
}

Graph Graph::induced_subgraph(const std::vector<Vertex>& keep) const {
  std::vector<Vertex> remap(num_vertices(), kNoVertex);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    CSD_CHECK_MSG(keep[i] < num_vertices(), "induced_subgraph: bad vertex");
    CSD_CHECK_MSG(remap[keep[i]] == kNoVertex,
                  "induced_subgraph: duplicate vertex " << keep[i]);
    remap[keep[i]] = static_cast<Vertex>(i);
  }
  Graph sub(static_cast<Vertex>(keep.size()));
  for (const Vertex u : keep)
    for (const Vertex v : adj_[u])
      if (remap[v] != kNoVertex && remap[u] < remap[v])
        sub.add_edge(remap[u], remap[v]);
  return sub;
}

Vertex Graph::append_disjoint(const Graph& other) {
  const Vertex offset = add_vertices(other.num_vertices());
  for (Vertex u = 0; u < other.num_vertices(); ++u)
    for (const Vertex v : other.adj_[u])
      if (u < v) add_edge(offset + u, offset + v);
  return offset;
}

void Graph::sort_adjacency() {
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
  csr_valid_ = false;
}

const GraphCsr& Graph::csr() const {
  if (!csr_valid_) {
    const std::size_t n = adj_.size();
    csr_.offsets.assign(n + 1, 0);
    std::uint64_t total = 0;
    for (std::size_t v = 0; v < n; ++v) {
      csr_.offsets[v] = total;
      total += adj_[v].size();
    }
    csr_.offsets[n] = total;
    csr_.neighbors.clear();
    csr_.neighbors.reserve(total);
    for (const auto& nbrs : adj_)
      csr_.neighbors.insert(csr_.neighbors.end(), nbrs.begin(), nbrs.end());
    csr_valid_ = true;
  }
  return csr_;
}

}  // namespace csd
