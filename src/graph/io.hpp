// Graph serialization: a plain edge-list format and DIMACS. Lets the
// examples and the CLI operate on external graphs and makes experiment
// inputs exchangeable.
//
// Edge-list format (0-based):
//   n m
//   u v
//   ...
//
// DIMACS format (1-based, 'c' comment lines allowed):
//   p edge n m
//   e u v
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace csd::io {

/// Write/read the plain edge-list format. Readers throw CheckFailure with a
/// line-numbered message on malformed input.
void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

/// Write/read DIMACS "p edge".
void write_dimacs(std::ostream& os, const Graph& g);
Graph read_dimacs(std::istream& is);

/// Detect the format from the first non-comment token ("p" -> DIMACS,
/// a number -> edge list) and read accordingly.
Graph read_any(std::istream& is);

/// File helpers (throw CheckFailure if the file cannot be opened).
void save(const std::string& path, const Graph& g, bool dimacs = false);
Graph load(const std::string& path);

}  // namespace csd::io
