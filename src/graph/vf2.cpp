#include "graph/vf2.hpp"

#include <algorithm>
#include <numeric>

#include "graph/oracle.hpp"
#include "support/bitvec.hpp"
#include "support/check.hpp"

namespace csd {

namespace {

/// Pattern vertex visit order: start from the highest-degree vertex, then
/// repeatedly take the unvisited vertex with the most visited neighbors
/// (ties broken by degree). Keeps the partial match connected whenever the
/// pattern is connected, which is where the pruning power comes from.
std::vector<Vertex> pattern_order(const Graph& pattern) {
  const Vertex k = pattern.num_vertices();
  std::vector<Vertex> order;
  order.reserve(k);
  std::vector<bool> placed(k, false);
  for (Vertex step = 0; step < k; ++step) {
    Vertex best = kNoVertex;
    std::uint32_t best_connected = 0;
    Vertex best_degree = 0;
    for (Vertex h = 0; h < k; ++h) {
      if (placed[h]) continue;
      std::uint32_t connected = 0;
      for (const Vertex nb : pattern.neighbors(h))
        if (placed[nb]) ++connected;
      const Vertex deg = pattern.degree(h);
      if (best == kNoVertex || connected > best_connected ||
          (connected == best_connected && deg > best_degree)) {
        best = h;
        best_connected = connected;
        best_degree = deg;
      }
    }
    placed[best] = true;
    order.push_back(best);
  }
  return order;
}

/// Symmetry breaking: pattern vertices that are twins (identical open or
/// closed neighborhoods) are interchangeable in any embedding, so we impose
/// image(u) < image(v) along each twin class. This collapses the factorial
/// automorphism blowup of cliques and duplicated gadgets.
std::vector<Vertex> twin_predecessors(const Graph& pattern) {
  const Vertex k = pattern.num_vertices();
  std::vector<std::vector<Vertex>> sorted_nbrs(k);
  for (Vertex v = 0; v < k; ++v) {
    const auto nb = pattern.neighbors(v);
    sorted_nbrs[v].assign(nb.begin(), nb.end());
    std::sort(sorted_nbrs[v].begin(), sorted_nbrs[v].end());
  }
  const auto are_twins = [&](Vertex u, Vertex v) {
    // Open twins: N(u) == N(v); closed twins: N(u)\{v} == N(v)\{u} with u~v.
    std::vector<Vertex> nu, nv;
    for (const Vertex w : sorted_nbrs[u])
      if (w != v) nu.push_back(w);
    for (const Vertex w : sorted_nbrs[v])
      if (w != u) nv.push_back(w);
    if (nu != nv) return false;
    return true;  // adjacency between u,v is symmetric either way
  };
  std::vector<Vertex> pred(k, kNoVertex);
  // Greedy chaining: for each v, the largest u < v that is its twin.
  for (Vertex v = 1; v < k; ++v)
    for (Vertex u = v; u-- > 0;)
      if (are_twins(u, v)) {
        pred[v] = u;
        break;
      }
  return pred;
}

class Matcher {
 public:
  Matcher(const Graph& host, const Graph& pattern,
          const SubgraphSearchOptions& opts)
      : host_(host),
        pattern_(pattern),
        opts_(opts),
        order_(pattern_order(pattern)),
        twin_pred_(twin_predecessors(pattern)),
        twin_succ_(pattern.num_vertices(), kNoVertex),
        match_(pattern.num_vertices(), kNoVertex),
        used_(host.num_vertices(), false) {
    for (Vertex v = 0; v < pattern.num_vertices(); ++v)
      if (twin_pred_[v] != kNoVertex) twin_succ_[twin_pred_[v]] = v;
    // Dense host adjacency rows turn the consistency probe in the inner
    // loop into a single bit test; skip them when the host is too large
    // for the quadratic bit matrix to pay off.
    if (host.num_vertices() <= kBitRowLimit)
      host_rows_ = oracle::adjacency_rows(host);
  }

  std::optional<std::vector<Vertex>> run() {
    if (pattern_.num_vertices() > host_.num_vertices()) return std::nullopt;
    if (pattern_.num_edges() > host_.num_edges()) return std::nullopt;
    if (extend(0)) return match_;
    return std::nullopt;
  }

 private:
  bool extend(std::size_t depth) {
    if (depth == order_.size()) return true;
    if (opts_.max_steps != 0) {
      CSD_CHECK_MSG(++steps_ <= opts_.max_steps,
                    "subgraph search exceeded step budget");
    }
    const Vertex h = order_[depth];

    // Candidate host vertices: if h has an already-matched pattern neighbor,
    // restrict to that neighbor's image's adjacency; otherwise all hosts.
    Vertex anchor = kNoVertex;
    for (const Vertex nb : pattern_.neighbors(h)) {
      if (match_[nb] != kNoVertex) {
        anchor = match_[nb];
        break;
      }
    }

    const auto try_candidate = [&](Vertex g) -> bool {
      if (used_[g]) return false;
      if (host_.degree(g) < pattern_.degree(h)) return false;
      // Symmetry breaking: twin-chain neighbors must have increasing images
      // (twins are interchangeable), whichever side is matched first.
      if (twin_pred_[h] != kNoVertex && match_[twin_pred_[h]] != kNoVertex &&
          g < match_[twin_pred_[h]])
        return false;
      if (twin_succ_[h] != kNoVertex && match_[twin_succ_[h]] != kNoVertex &&
          g > match_[twin_succ_[h]])
        return false;
      // All matched pattern neighbors must map to host neighbors of g.
      const BitVec* row = host_rows_.empty() ? nullptr : &host_rows_[g];
      for (const Vertex nb : pattern_.neighbors(h)) {
        if (match_[nb] == kNoVertex) continue;
        if (row != nullptr ? !row->get(match_[nb])
                           : !host_.has_edge(g, match_[nb]))
          return false;
      }
      match_[h] = g;
      used_[g] = true;
      if (extend(depth + 1)) return true;
      match_[h] = kNoVertex;
      used_[g] = false;
      return false;
    };

    if (anchor != kNoVertex) {
      for (const Vertex g : host_.neighbors(anchor))
        if (try_candidate(g)) return true;
    } else {
      for (Vertex g = 0; g < host_.num_vertices(); ++g)
        if (try_candidate(g)) return true;
    }
    return false;
  }

  static constexpr Vertex kBitRowLimit = 4096;

  const Graph& host_;
  const Graph& pattern_;
  SubgraphSearchOptions opts_;
  std::vector<BitVec> host_rows_;
  std::vector<Vertex> order_;
  std::vector<Vertex> twin_pred_;
  std::vector<Vertex> twin_succ_;
  std::vector<Vertex> match_;
  std::vector<bool> used_;
  std::uint64_t steps_ = 0;
};

}  // namespace

std::optional<std::vector<Vertex>> find_subgraph(
    const Graph& host, const Graph& pattern,
    const SubgraphSearchOptions& opts) {
  if (pattern.num_vertices() == 0) return std::vector<Vertex>{};
  Matcher matcher(host, pattern, opts);
  auto result = matcher.run();
  if (result) CSD_CHECK(is_valid_embedding(host, pattern, *result));
  return result;
}

bool contains_subgraph(const Graph& host, const Graph& pattern,
                       const SubgraphSearchOptions& opts) {
  return find_subgraph(host, pattern, opts).has_value();
}

bool is_valid_embedding(const Graph& host, const Graph& pattern,
                        const std::vector<Vertex>& embedding) {
  if (embedding.size() != pattern.num_vertices()) return false;
  std::vector<Vertex> sorted = embedding;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;  // not injective
  for (const Vertex v : embedding)
    if (v >= host.num_vertices()) return false;
  for (const auto& [u, v] : pattern.edges())
    if (!host.has_edge(embedding[u], embedding[v])) return false;
  return true;
}

}  // namespace csd
