// Ground-truth subgraph oracles.
//
// Every distributed detection algorithm in this library is validated against
// these exhaustive (centralized) checkers. They are exponential in the worst
// case but intended for the test/benchmark instance sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "support/bitvec.hpp"

namespace csd::oracle {

/// Adjacency bit-rows of `g`: rows[v] has one bit per vertex, bit w set iff
/// {v, w} is an edge. The dense-set representation the bit-parallel clique
/// search and the detection-layer candidate checks intersect.
std::vector<BitVec> adjacency_rows(const Graph& g);

/// True iff the graph described by symmetric adjacency bit-rows contains
/// K_s. Word-parallel: candidate sets are intersected 64 vertices at a time
/// (the Czumaj–Konrad candidate-neighborhood idiom).
bool has_clique_rows(const std::vector<BitVec>& rows, Vertex s);

/// True iff G contains a (simple) cycle of length exactly L (L >= 3).
bool has_cycle_of_length(const Graph& g, Vertex L);

/// Some simple cycle of length exactly L, as a vertex sequence, if one exists.
std::optional<std::vector<Vertex>> find_cycle_of_length(const Graph& g,
                                                        Vertex L);

/// Girth of G: length of its shortest cycle, or 0 if G is a forest.
Vertex girth(const Graph& g);

/// Some shortest cycle (vertex sequence) if G is not a forest.
std::optional<std::vector<Vertex>> find_shortest_cycle(const Graph& g);

/// True iff G contains K_s as a subgraph.
bool has_clique(const Graph& g, Vertex s);

/// Exact number of K_s copies (unordered vertex sets) in G.
std::uint64_t count_cliques(const Graph& g, Vertex s);

/// All K_s copies as sorted vertex sets (for listing-completeness checks).
std::vector<std::vector<Vertex>> list_cliques(const Graph& g, Vertex s);

/// Exact number of simple cycles of length exactly L (as subgraphs, i.e.
/// each cycle counted once, not once per orientation/rotation).
std::uint64_t count_cycles_of_length(const Graph& g, Vertex L);

/// True iff G contains `tree` (which must be a tree) as a subgraph.
bool has_tree(const Graph& g, const Graph& tree);

/// True iff G contains a simple cycle of length exactly L whose edge
/// weights (symmetric weight oracle) sum to exactly W.
bool has_weighted_cycle(const Graph& g, Vertex L, std::uint64_t target,
                        const std::function<std::uint64_t(Vertex, Vertex)>&
                            weight);

}  // namespace csd::oracle
