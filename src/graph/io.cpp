#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "support/check.hpp"

namespace csd::io {

namespace {

/// Line-based reader that skips blank and comment lines and reports
/// positions in errors.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next meaningful line, or false at EOF. 'c'- and '#'-prefixed lines are
  /// comments.
  bool next(std::string& line) {
    while (std::getline(is_, line)) {
      ++line_number_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (line[first] == '#' || (line[first] == 'c' &&
                                 (first + 1 == line.size() ||
                                  line[first + 1] == ' '))) {
        continue;
      }
      return true;
    }
    return false;
  }

  std::size_t line_number() const { return line_number_; }

 private:
  std::istream& is_;
  std::size_t line_number_ = 0;
};

std::pair<std::uint64_t, std::uint64_t> parse_two(const std::string& line,
                                                  std::size_t line_number,
                                                  const char* what) {
  std::istringstream ss(line);
  std::uint64_t a = 0, b = 0;
  ss >> a >> b;
  CSD_CHECK_MSG(!ss.fail(), "line " << line_number << ": expected two "
                                    << what << " values in '" << line << "'");
  std::string rest;
  ss >> rest;
  CSD_CHECK_MSG(rest.empty(),
                "line " << line_number << ": trailing tokens in '" << line
                        << "'");
  return {a, b};
}

}  // namespace

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  LineReader reader(is);
  std::string line;
  CSD_CHECK_MSG(reader.next(line), "empty graph input");
  const auto [n, m] = parse_two(line, reader.line_number(), "header");
  CSD_CHECK_MSG(n <= kNoVertex, "vertex count too large");
  Graph g(static_cast<Vertex>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    CSD_CHECK_MSG(reader.next(line),
                  "expected " << m << " edges, got " << i);
    const auto [u, v] = parse_two(line, reader.line_number(), "endpoint");
    CSD_CHECK_MSG(u < n && v < n, "line " << reader.line_number()
                                          << ": endpoint out of range");
    g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  CSD_CHECK_MSG(!reader.next(line), "trailing content after the edge list");
  return g;
}

void write_dimacs(std::ostream& os, const Graph& g) {
  os << "c written by congest-subgraph-detection\n";
  os << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges())
    os << "e " << (u + 1) << ' ' << (v + 1) << '\n';
}

Graph read_dimacs(std::istream& is) {
  LineReader reader(is);
  std::string line;
  CSD_CHECK_MSG(reader.next(line), "empty DIMACS input");
  std::istringstream header(line);
  std::string p, kind;
  std::uint64_t n = 0, m = 0;
  header >> p >> kind >> n >> m;
  CSD_CHECK_MSG(p == "p" && !header.fail(),
                "line " << reader.line_number() << ": expected 'p edge n m'");
  CSD_CHECK_MSG(n <= kNoVertex, "vertex count too large");
  Graph g(static_cast<Vertex>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    CSD_CHECK_MSG(reader.next(line), "expected " << m << " edges, got " << i);
    std::istringstream ss(line);
    std::string e;
    std::uint64_t u = 0, v = 0;
    ss >> e >> u >> v;
    CSD_CHECK_MSG(e == "e" && !ss.fail(),
                  "line " << reader.line_number() << ": expected 'e u v'");
    CSD_CHECK_MSG(u >= 1 && v >= 1 && u <= n && v <= n,
                  "line " << reader.line_number()
                          << ": endpoint out of range (DIMACS is 1-based)");
    g.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
  }
  return g;
}

Graph read_any(std::istream& is) {
  // Peek at the first meaningful character without consuming the stream:
  // buffer everything (inputs are experiment-sized).
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string content = buffer.str();
  std::istringstream probe(content);
  LineReader reader(probe);
  std::string line;
  CSD_CHECK_MSG(reader.next(line), "empty graph input");
  const auto first = line.find_first_not_of(" \t");
  std::istringstream replay(content);
  if (line[first] == 'p') return read_dimacs(replay);
  return read_edge_list(replay);
}

void save(const std::string& path, const Graph& g, bool dimacs) {
  std::ofstream os(path);
  CSD_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  if (dimacs)
    write_dimacs(os, g);
  else
    write_edge_list(os, g);
  CSD_CHECK_MSG(os.good(), "write to " << path << " failed");
}

Graph load(const std::string& path) {
  std::ifstream is(path);
  CSD_CHECK_MSG(is.good(), "cannot open " << path);
  return read_any(is);
}

}  // namespace csd::io
