// Core undirected simple-graph type.
//
// Vertices are dense indices 0..n-1 ("who is where in the topology");
// CONGEST-layer *identifiers* are assigned separately by congest::Network,
// since several lower bounds (§4, §5) quantify over adversarial or random
// identifier assignments for a fixed topology.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace csd {

using Vertex = std::uint32_t;
constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

/// Immutable structure-of-arrays adjacency view (compressed sparse row).
///
/// The neighbors of `v` are `neighbors[offsets[v] .. offsets[v+1])`, in
/// exactly the adjacency-list order — so position `p` in a row is the same
/// port number the CONGEST layer assigns, and `offsets[v] + p` is a dense
/// index over directed edges that engines use for flat per-edge tables.
struct GraphCsr {
  std::vector<std::uint64_t> offsets;  // n + 1 entries
  std::vector<Vertex> neighbors;       // 2m entries

  std::uint64_t num_directed_edges() const noexcept {
    return offsets.empty() ? 0 : offsets.back();
  }
  std::span<const Vertex> row(Vertex v) const noexcept {
    return {neighbors.data() + offsets[v],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
};

/// Undirected simple graph with O(1) amortized edge insertion, O(1) expected
/// adjacency queries, and cache-friendly neighbor iteration.
class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex n) : adj_(n) {}

  Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(adj_.size());
  }
  std::uint64_t num_edges() const noexcept { return num_edges_; }

  /// Append `count` fresh isolated vertices; returns the first new index.
  Vertex add_vertices(Vertex count) {
    const auto first = num_vertices();
    adj_.resize(adj_.size() + count);
    csr_valid_ = false;
    return first;
  }

  Vertex add_vertex() { return add_vertices(1); }

  /// Insert undirected edge {u, v}. Self-loops and duplicates are rejected.
  void add_edge(Vertex u, Vertex v) {
    CSD_CHECK_MSG(u < num_vertices() && v < num_vertices(),
                  "edge endpoint out of range: {" << u << "," << v << "}");
    CSD_CHECK_MSG(u != v, "self-loop rejected at vertex " << u);
    CSD_CHECK_MSG(!has_edge(u, v), "duplicate edge {" << u << "," << v << "}");
    adj_[u].push_back(v);
    adj_[v].push_back(u);
    edge_set_.insert(edge_key(u, v));
    ++num_edges_;
    csr_valid_ = false;
  }

  /// Insert {u, v} unless it already exists; returns true if inserted.
  bool add_edge_if_absent(Vertex u, Vertex v) {
    if (u == v || has_edge(u, v)) return false;
    add_edge(u, v);
    return true;
  }

  bool has_edge(Vertex u, Vertex v) const noexcept {
    if (u >= num_vertices() || v >= num_vertices() || u == v) return false;
    return edge_set_.count(edge_key(u, v)) != 0;
  }

  std::span<const Vertex> neighbors(Vertex v) const noexcept {
    CSD_DCHECK(v < num_vertices());
    return adj_[v];
  }

  Vertex degree(Vertex v) const noexcept {
    CSD_DCHECK(v < num_vertices());
    return static_cast<Vertex>(adj_[v].size());
  }

  Vertex max_degree() const noexcept {
    Vertex d = 0;
    for (Vertex v = 0; v < num_vertices(); ++v) d = std::max(d, degree(v));
    return d;
  }

  /// All edges as (u, v) with u < v, in insertion-independent sorted order.
  std::vector<std::pair<Vertex, Vertex>> edges() const;

  /// Subgraph induced on `keep` (indices remapped densely, in `keep` order).
  /// `keep` must contain distinct valid vertices.
  Graph induced_subgraph(const std::vector<Vertex>& keep) const;

  /// Disjoint union: appends `other`, returning the offset added to its
  /// vertex indices.
  Vertex append_disjoint(const Graph& other);

  /// Sort all adjacency lists (stable iteration order for deterministic
  /// algorithms); call after bulk construction.
  void sort_adjacency();

  /// Cached CSR view over the current adjacency. Lazily built on first call
  /// and invalidated by any mutation. Building mutates the cache, so
  /// materialize it once (engine constructors do) before sharing a const
  /// Graph across threads; concurrent reads of a built view are safe.
  const GraphCsr& csr() const;

 private:
  static std::uint64_t edge_key(Vertex u, Vertex v) noexcept {
    const std::uint64_t a = std::min(u, v), b = std::max(u, v);
    return (a << 32) | b;
  }

  std::vector<std::vector<Vertex>> adj_;
  std::unordered_set<std::uint64_t> edge_set_;
  std::uint64_t num_edges_ = 0;
  mutable GraphCsr csr_;
  mutable bool csr_valid_ = false;
};

}  // namespace csd
