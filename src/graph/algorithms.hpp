// Classic centralized graph algorithms used as substrates: BFS, diameter,
// connectivity, bipartiteness, degeneracy, and the Barenboim–Elkin-style
// layer decomposition underlying phase II of the §6 algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace csd {

constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// True iff g is connected (vacuously true for the empty graph).
bool is_connected(const Graph& g);

/// Connected component id per vertex (ids dense from 0).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Eccentricity-based diameter; kUnreachable if g is disconnected.
std::uint32_t diameter(const Graph& g);

/// True iff g is bipartite; if `side` is non-null it receives a 2-coloring.
bool is_bipartite(const Graph& g, std::vector<std::uint8_t>* side = nullptr);

/// Degeneracy of g and (optionally) a degeneracy elimination ordering.
std::uint32_t degeneracy(const Graph& g, std::vector<Vertex>* order = nullptr);

/// Result of the greedy layer decomposition (centralized reference for the
/// distributed phase-II layering of §6).
struct LayerDecomposition {
  /// layer[v] = layer index of v, or kUnreachable if v was never peeled
  /// (possible only when the iteration cap is hit).
  std::vector<std::uint32_t> layer;
  std::uint32_t num_layers = 0;
  /// Vertices not assigned within max_layers iterations.
  std::vector<Vertex> unassigned;
};

/// Repeatedly peel all vertices whose degree in the remaining graph is at
/// most `degree_threshold`; each peel wave forms one layer. Guarantees that
/// every assigned vertex has at most `degree_threshold` neighbors in its own
/// or higher layers ("up-degree"), matching §6 phase II.
LayerDecomposition layer_decomposition(const Graph& g,
                                       std::uint32_t degree_threshold,
                                       std::uint32_t max_layers);

/// Maximum up-degree realized by a decomposition (validation helper).
std::uint32_t max_up_degree(const Graph& g, const LayerDecomposition& d);

}  // namespace csd
