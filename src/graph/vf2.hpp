// Subgraph monomorphism (non-induced subgraph isomorphism) testing.
//
// This is the library's general-purpose ground-truth oracle for
// H-subgraph-detection: does the host graph G contain a copy of the pattern
// H as a subgraph (Definition 1 of the paper)?
//
// The search is a VF2-style backtracking over a connectivity-first pattern
// ordering with degree and neighborhood pruning. Worst-case exponential —
// intended for validation at test scale, not as a competitor algorithm.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace csd {

struct SubgraphSearchOptions {
  /// Abort the search after this many backtracking steps (0 = unlimited).
  /// When the budget is exhausted, the query throws CheckFailure, so a
  /// truncated search is never silently reported as "no subgraph".
  std::uint64_t max_steps = 0;
};

/// If G contains the pattern H as a subgraph, returns an embedding:
/// result[h] = image of pattern vertex h in G. Otherwise nullopt.
std::optional<std::vector<Vertex>> find_subgraph(
    const Graph& host, const Graph& pattern,
    const SubgraphSearchOptions& opts = {});

/// Convenience wrapper: true iff pattern ⊆ host.
bool contains_subgraph(const Graph& host, const Graph& pattern,
                       const SubgraphSearchOptions& opts = {});

/// Verifies that `embedding` maps pattern into host injectively, preserving
/// all pattern edges. Used to double-check search results and algorithm
/// outputs.
bool is_valid_embedding(const Graph& host, const Graph& pattern,
                        const std::vector<Vertex>& embedding);

}  // namespace csd
