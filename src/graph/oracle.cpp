#include "graph/oracle.hpp"

#include <algorithm>
#include <deque>

#include "graph/algorithms.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"

namespace csd::oracle {

namespace {

/// Exhaustive search for simple cycles of length exactly L whose minimum
/// vertex is `start`. Enumerates each such cycle twice (both orientations).
/// BFS-distance pruning keeps it fast on sparse instances.
class CycleEnumerator {
 public:
  CycleEnumerator(const Graph& g, Vertex L) : g_(g), length_(L) {}

  /// Visits cycles with min vertex = start; calls `emit(path)` for each
  /// directed traversal found; emit returns true to stop the search.
  template <typename Emit>
  bool enumerate_from(Vertex start, Emit&& emit) {
    start_ = start;
    // BFS distances restricted to vertices >= start (valid cycle vertices).
    dist_.assign(g_.num_vertices(), kUnreachable);
    std::deque<Vertex> queue{start};
    dist_[start] = 0;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g_.neighbors(u))
        if (v >= start && dist_[v] == kUnreachable) {
          dist_[v] = dist_[u] + 1;
          queue.push_back(v);
        }
    }
    on_path_.assign(g_.num_vertices(), false);
    path_.clear();
    path_.push_back(start);
    on_path_[start] = true;
    const bool stopped = dfs(start, length_, emit);
    on_path_[start] = false;
    return stopped;
  }

 private:
  template <typename Emit>
  bool dfs(Vertex v, Vertex remaining, Emit&& emit) {
    for (const Vertex w : g_.neighbors(v)) {
      if (remaining == 1) {
        if (w == start_ && path_.size() == length_) {
          if (emit(path_)) return true;
        }
        continue;
      }
      if (w <= start_ || on_path_[w]) continue;
      if (dist_[w] == kUnreachable || dist_[w] > remaining - 1) continue;
      path_.push_back(w);
      on_path_[w] = true;
      const bool stopped = dfs(w, remaining - 1, emit);
      path_.pop_back();
      on_path_[w] = false;
      if (stopped) return true;
    }
    return false;
  }

  const Graph& g_;
  Vertex length_;
  Vertex start_ = 0;
  std::vector<std::uint32_t> dist_;
  std::vector<bool> on_path_;
  std::vector<Vertex> path_;
};

}  // namespace

std::optional<std::vector<Vertex>> find_cycle_of_length(const Graph& g,
                                                        Vertex L) {
  CSD_CHECK_MSG(L >= 3, "cycles have length >= 3");
  CycleEnumerator enumerator(g, L);
  std::optional<std::vector<Vertex>> found;
  for (Vertex start = 0; start + L <= g.num_vertices() + 0u && !found;
       ++start) {
    enumerator.enumerate_from(start, [&](const std::vector<Vertex>& path) {
      found = path;
      return true;
    });
  }
  return found;
}

bool has_cycle_of_length(const Graph& g, Vertex L) {
  return find_cycle_of_length(g, L).has_value();
}

std::uint64_t count_cycles_of_length(const Graph& g, Vertex L) {
  CSD_CHECK_MSG(L >= 3, "cycles have length >= 3");
  CycleEnumerator enumerator(g, L);
  std::uint64_t directed = 0;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    enumerator.enumerate_from(start, [&](const std::vector<Vertex>&) {
      ++directed;
      return false;
    });
  }
  CSD_CHECK(directed % 2 == 0);  // each cycle seen once per orientation
  return directed / 2;
}

Vertex girth(const Graph& g) {
  // Standard all-roots BFS girth algorithm (exact for unweighted graphs).
  Vertex best = 0;
  for (Vertex root = 0; root < g.num_vertices(); ++root) {
    std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
    std::vector<Vertex> parent(g.num_vertices(), kNoVertex);
    std::deque<Vertex> queue{root};
    dist[root] = 0;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = dist[u] + 1;
          parent[v] = u;
          queue.push_back(v);
        } else if (v != parent[u] && u != parent[v]) {
          const Vertex candidate =
              static_cast<Vertex>(dist[u] + dist[v] + 1);
          if (best == 0 || candidate < best) best = candidate;
        }
      }
    }
  }
  return best;
}

std::optional<std::vector<Vertex>> find_shortest_cycle(const Graph& g) {
  const Vertex gg = girth(g);
  if (gg == 0) return std::nullopt;
  auto cycle = find_cycle_of_length(g, gg);
  CSD_CHECK(cycle.has_value());
  return cycle;
}

namespace {

/// Recursive clique extension over candidates larger than the last chosen
/// vertex; `emit` returns true to stop early.
template <typename Emit>
bool extend_clique(const Graph& g, std::vector<Vertex>& current,
                   const std::vector<Vertex>& candidates, Vertex target,
                   Emit&& emit) {
  if (current.size() == target) return emit(current);
  if (current.size() + candidates.size() < target) return false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Vertex v = candidates[i];
    std::vector<Vertex> next;
    next.reserve(candidates.size() - i);
    for (std::size_t j = i + 1; j < candidates.size(); ++j)
      if (g.has_edge(v, candidates[j])) next.push_back(candidates[j]);
    current.push_back(v);
    const bool stopped = extend_clique(g, current, next, target, emit);
    current.pop_back();
    if (stopped) return true;
  }
  return false;
}

template <typename Emit>
void for_each_clique(const Graph& g, Vertex s, Emit&& emit) {
  CSD_CHECK_MSG(s >= 1, "clique size must be >= 1");
  std::vector<Vertex> current;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::vector<Vertex> candidates;
    for (const Vertex w : g.neighbors(v))
      if (w > v) candidates.push_back(w);
    std::sort(candidates.begin(), candidates.end());
    current.push_back(v);
    const bool stopped = extend_clique(g, current, candidates, s, emit);
    current.pop_back();
    if (stopped) return;
  }
}

/// Bit-parallel clique extension: `cand` holds the common neighbors of the
/// chosen prefix; candidates are consumed in ascending order starting at
/// `start` so every vertex set is visited exactly once. `scratch[depth]`
/// provides the intersection buffer for this level (reused across siblings).
bool extend_clique_rows(const std::vector<BitVec>& rows,
                        std::vector<BitVec>& scratch, const BitVec& cand,
                        Vertex need, std::size_t start, std::size_t depth) {
  if (cand.count() < need) return false;  // conservative prune
  for (std::size_t w = cand.find_next(start); w < cand.size();
       w = cand.find_next(w + 1)) {
    if (need == 1) return true;
    BitVec& next = scratch[depth];
    intersect_into(next, cand, rows[w]);
    if (extend_clique_rows(rows, scratch, next, need - 1, w + 1, depth + 1))
      return true;
  }
  return false;
}

}  // namespace

std::vector<BitVec> adjacency_rows(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<BitVec> rows(n, BitVec(n));
  for (Vertex v = 0; v < n; ++v)
    for (const Vertex w : g.neighbors(v)) rows[v].set(w);
  return rows;
}

bool has_clique_rows(const std::vector<BitVec>& rows, Vertex s) {
  const auto n = static_cast<Vertex>(rows.size());
  if (s == 0) return true;
  if (s == 1) return n > 0;
  std::vector<BitVec> scratch(s);
  for (Vertex v = 0; v < n; ++v)
    if (extend_clique_rows(rows, scratch, rows[v], s - 1, v + 1, 0))
      return true;
  return false;
}

bool has_clique(const Graph& g, Vertex s) {
  // Dense bit-rows pay off whenever they fit comfortably in memory; above
  // the threshold fall back to the sparse recursive search.
  constexpr Vertex kBitRowLimit = 4096;
  if (s >= 2 && g.num_vertices() <= kBitRowLimit)
    return has_clique_rows(adjacency_rows(g), s);
  bool found = false;
  for_each_clique(g, s, [&](const std::vector<Vertex>&) {
    found = true;
    return true;
  });
  return found;
}

std::uint64_t count_cliques(const Graph& g, Vertex s) {
  std::uint64_t count = 0;
  for_each_clique(g, s, [&](const std::vector<Vertex>&) {
    ++count;
    return false;
  });
  return count;
}

std::vector<std::vector<Vertex>> list_cliques(const Graph& g, Vertex s) {
  std::vector<std::vector<Vertex>> out;
  for_each_clique(g, s, [&](const std::vector<Vertex>& clique) {
    out.push_back(clique);  // already sorted ascending by construction
    return false;
  });
  return out;
}

bool has_weighted_cycle(
    const Graph& g, Vertex L, std::uint64_t target,
    const std::function<std::uint64_t(Vertex, Vertex)>& weight) {
  CSD_CHECK_MSG(L >= 3, "cycles have length >= 3");
  CycleEnumerator enumerator(g, L);
  bool found = false;
  for (Vertex start = 0; start < g.num_vertices() && !found; ++start) {
    enumerator.enumerate_from(start, [&](const std::vector<Vertex>& path) {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < path.size(); ++i)
        total += weight(path[i], path[(i + 1) % path.size()]);
      if (total == target) {
        found = true;
        return true;
      }
      return false;
    });
  }
  return found;
}

bool has_tree(const Graph& g, const Graph& tree) {
  CSD_CHECK_MSG(
      tree.num_edges() + 1 == tree.num_vertices() && is_connected(tree),
      "pattern is not a tree");
  return contains_subgraph(g, tree);
}

}  // namespace csd::oracle
