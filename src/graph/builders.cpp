#include "graph/builders.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "graph/oracle.hpp"
#include "support/check.hpp"
#include "support/combinatorics.hpp"

namespace csd::build {

Graph path(Vertex n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(Vertex n) {
  CSD_CHECK_MSG(n >= 3, "cycle needs >= 3 vertices");
  Graph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph complete(Vertex n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(Vertex a, Vertex b) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

Graph star(Vertex leaves) {
  Graph g(leaves + 1);
  for (Vertex v = 1; v <= leaves; ++v) g.add_edge(0, v);
  return g;
}

Graph grid(Vertex rows, Vertex cols) {
  Graph g(rows * cols);
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r)
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

Graph petersen() {
  Graph g(10);
  for (Vertex v = 0; v < 5; ++v) {
    g.add_edge(v, (v + 1) % 5);        // outer pentagon
    g.add_edge(5 + v, 5 + (v + 2) % 5);  // inner pentagram
    g.add_edge(v, 5 + v);              // spokes
  }
  return g;
}

Graph gnp(Vertex n, double p, Rng& rng) {
  CSD_CHECK_MSG(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (rng.uniform() < p) g.add_edge(u, v);
  return g;
}

Graph gnm(Vertex n, std::uint64_t m, Rng& rng) {
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  CSD_CHECK_MSG(m <= max_edges, "too many edges requested");
  Graph g(n);
  while (g.num_edges() < m) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    g.add_edge_if_absent(u, v);
  }
  return g;
}

Graph random_bipartite(Vertex a, Vertex b, double p, Rng& rng) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v)
      if (rng.uniform() < p) g.add_edge(u, a + v);
  return g;
}

Graph random_tree(Vertex n, Rng& rng) {
  CSD_CHECK_MSG(n >= 1, "tree needs >= 1 vertex");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prüfer decoding: uniform over labelled trees.
  std::vector<Vertex> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<Vertex>(rng.below(n));
  std::vector<std::uint32_t> degree(n, 1);
  for (const Vertex x : prufer) ++degree[x];
  std::vector<Vertex> leaves;
  for (Vertex v = 0; v < n; ++v)
    if (degree[v] == 1) leaves.push_back(v);
  std::sort(leaves.begin(), leaves.end(), std::greater<>());
  for (const Vertex x : prufer) {
    const Vertex leaf = leaves.back();
    leaves.pop_back();
    g.add_edge(leaf, x);
    if (--degree[x] == 1) {
      // Insert keeping descending order so the smallest leaf stays at back.
      const auto it = std::lower_bound(leaves.begin(), leaves.end(), x,
                                       std::greater<>());
      leaves.insert(it, x);
    }
  }
  CSD_CHECK(leaves.size() == 2);
  g.add_edge(leaves[0], leaves[1]);
  return g;
}

Graph random_bounded_degree(Vertex n, Vertex d, Rng& rng) {
  Graph g(n);
  for (Vertex round = 0; round < d; ++round) {
    const auto perm = rng.permutation(n);
    for (Vertex i = 0; i + 1 < n; i += 2)
      g.add_edge_if_absent(perm[i], perm[i + 1]);
  }
  CSD_CHECK(g.max_degree() <= d);
  return g;
}

Graph polarity_graph(std::uint32_t q) {
  CSD_CHECK_MSG(q >= 2, "field order must be >= 2");
  // Projective points of PG(2, q): canonical representatives are
  // (1, y, z), (0, 1, z), (0, 0, 1).
  struct Point {
    std::uint32_t x, y, z;
  };
  std::vector<Point> points;
  points.reserve(q * q + q + 1);
  for (std::uint32_t y = 0; y < q; ++y)
    for (std::uint32_t z = 0; z < q; ++z) points.push_back({1, y, z});
  for (std::uint32_t z = 0; z < q; ++z) points.push_back({0, 1, z});
  points.push_back({0, 0, 1});

  Graph g(static_cast<Vertex>(points.size()));
  const auto dot = [q](const Point& a, const Point& b) {
    const std::uint64_t s = static_cast<std::uint64_t>(a.x) * b.x +
                            static_cast<std::uint64_t>(a.y) * b.y +
                            static_cast<std::uint64_t>(a.z) * b.z;
    return static_cast<std::uint32_t>(s % q);
  };
  for (Vertex i = 0; i < g.num_vertices(); ++i)
    for (Vertex j = i + 1; j < g.num_vertices(); ++j)
      if (dot(points[i], points[j]) == 0) g.add_edge(i, j);
  return g;
}

Graph incidence_graph(std::uint32_t q) {
  CSD_CHECK_MSG(q >= 2, "field order must be >= 2");
  // Points and lines of PG(2, q) share the same canonical representatives
  // (1,y,z), (0,1,z), (0,0,1); point p lies on line l iff p·l = 0 (mod q).
  struct Triple {
    std::uint32_t x, y, z;
  };
  std::vector<Triple> reps;
  reps.reserve(q * q + q + 1);
  for (std::uint32_t y = 0; y < q; ++y)
    for (std::uint32_t z = 0; z < q; ++z) reps.push_back({1, y, z});
  for (std::uint32_t z = 0; z < q; ++z) reps.push_back({0, 1, z});
  reps.push_back({0, 0, 1});

  const auto count = static_cast<Vertex>(reps.size());
  Graph g(2 * count);  // points are [0, count), lines [count, 2*count)
  const auto dot = [q](const Triple& a, const Triple& b) {
    const std::uint64_t s = static_cast<std::uint64_t>(a.x) * b.x +
                            static_cast<std::uint64_t>(a.y) * b.y +
                            static_cast<std::uint64_t>(a.z) * b.z;
    return static_cast<std::uint32_t>(s % q);
  };
  for (Vertex p = 0; p < count; ++p)
    for (Vertex l = 0; l < count; ++l)
      if (dot(reps[p], reps[l]) == 0) g.add_edge(p, count + l);
  return g;
}

Graph generalized_quadrangle_incidence(std::uint32_t q) {
  CSD_CHECK_MSG(q >= 3 && q % 2 == 1, "GQ construction needs an odd prime");
  // Points of the parabolic quadric Q(x) = x0² + x1x2 + x3x4 in PG(4, q),
  // canonical representatives (first nonzero coordinate = 1).
  using Point = std::array<std::uint32_t, 5>;
  const auto quadric = [q](const Point& a) {
    const std::uint64_t s = static_cast<std::uint64_t>(a[0]) * a[0] +
                            static_cast<std::uint64_t>(a[1]) * a[2] +
                            static_cast<std::uint64_t>(a[3]) * a[4];
    return static_cast<std::uint32_t>(s % q);
  };
  // Polarization B(a,b) = 2 a0 b0 + a1 b2 + a2 b1 + a3 b4 + a4 b3.
  const auto bilinear = [q](const Point& a, const Point& b) {
    const std::uint64_t s = 2ull * a[0] * b[0] +
                            static_cast<std::uint64_t>(a[1]) * b[2] +
                            static_cast<std::uint64_t>(a[2]) * b[1] +
                            static_cast<std::uint64_t>(a[3]) * b[4] +
                            static_cast<std::uint64_t>(a[4]) * b[3];
    return static_cast<std::uint32_t>(s % q);
  };

  std::vector<Point> points;
  const auto emit_canonical = [&](Point p) {
    if (quadric(p) == 0) points.push_back(p);
  };
  // Canonical representatives: leading coordinate 1 at position i, zeros
  // before, arbitrary after.
  for (std::uint32_t lead = 0; lead < 5; ++lead) {
    Point p{};
    p[lead] = 1;
    const std::uint32_t free = 4 - lead;
    std::uint64_t combos = 1;
    for (std::uint32_t i = 0; i < free; ++i) combos *= q;
    for (std::uint64_t code = 0; code < combos; ++code) {
      std::uint64_t rest = code;
      for (std::uint32_t i = lead + 1; i < 5; ++i) {
        p[i] = static_cast<std::uint32_t>(rest % q);
        rest /= q;
      }
      emit_canonical(p);
    }
  }
  CSD_CHECK(points.size() ==
            static_cast<std::size_t>(q + 1) * (q * q + 1));

  // Totally isotropic lines: spanned by pairs a, b with B(a, b) = 0. Each
  // line is canonicalized as its sorted set of point indices.
  const auto canonical_index = [&](Point p) -> std::uint32_t {
    // Scale so the first nonzero coordinate is 1.
    std::uint32_t lead = 0;
    while (p[lead] == 0) ++lead;
    // Modular inverse via Fermat (q prime).
    std::uint64_t inv = 1, base = p[lead], e = q - 2;
    while (e > 0) {
      if (e & 1) inv = inv * base % q;
      base = base * base % q;
      e >>= 1;
    }
    for (auto& c : p) c = static_cast<std::uint32_t>(c * inv % q);
    const auto it = std::find(points.begin(), points.end(), p);
    CSD_CHECK(it != points.end());
    return static_cast<std::uint32_t>(it - points.begin());
  };

  std::set<std::vector<std::uint32_t>> lines;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t j = i + 1; j < points.size(); ++j) {
      if (bilinear(points[i], points[j]) != 0) continue;
      std::vector<std::uint32_t> line{i, j};
      for (std::uint32_t t = 1; t < q; ++t) {
        Point mix;
        for (std::uint32_t c = 0; c < 5; ++c)
          mix[c] = static_cast<std::uint32_t>(
              (points[i][c] + static_cast<std::uint64_t>(t) * points[j][c]) %
              q);
        line.push_back(canonical_index(mix));
      }
      std::sort(line.begin(), line.end());
      lines.insert(std::move(line));
    }
  }

  const auto num_points = static_cast<Vertex>(points.size());
  Graph g(num_points + static_cast<Vertex>(lines.size()));
  Vertex line_vertex = num_points;
  for (const auto& line : lines) {
    for (const auto p : line) g.add_edge(p, line_vertex);
    ++line_vertex;
  }
  return g;
}

Graph disjoint_copies(const Graph& g, Vertex copies) {
  Graph out;
  for (Vertex c = 0; c < copies; ++c) out.append_disjoint(g);
  return out;
}

std::vector<Vertex> plant_subgraph(Graph& host, const Graph& pattern,
                                   Rng& rng) {
  CSD_CHECK_MSG(pattern.num_vertices() <= host.num_vertices(),
                "pattern larger than host");
  const auto image = rng.sample_without_replacement(
      host.num_vertices(), pattern.num_vertices());
  for (const auto& [u, v] : pattern.edges())
    host.add_edge_if_absent(image[u], image[v]);
  return {image.begin(), image.end()};
}

Graph random_high_girth(Vertex n, std::uint64_t target_edges,
                        Vertex girth_below, Rng& rng) {
  Graph g = gnm(n, target_edges, rng);
  // Repeatedly find a shortest cycle and break it if it is too short. Each
  // removal strictly decreases the edge count, so this terminates.
  for (;;) {
    const Vertex current_girth = oracle::girth(g);
    if (current_girth == 0 || current_girth > girth_below) return g;
    const auto cycle_vertices = oracle::find_cycle_of_length(g, current_girth);
    CSD_CHECK(cycle_vertices.has_value());
    // Remove one random edge of the cycle: rebuild without it.
    const auto& cyc = *cycle_vertices;
    const auto pick = rng.below(cyc.size());
    const Vertex a = cyc[pick];
    const Vertex b = cyc[(pick + 1) % cyc.size()];
    Graph next(g.num_vertices());
    for (const auto& [u, v] : g.edges())
      if (!((u == a && v == b) || (u == b && v == a))) next.add_edge(u, v);
    g = std::move(next);
  }
}

}  // namespace csd::build
