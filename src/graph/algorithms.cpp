#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace csd {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  CSD_CHECK(source < g.num_vertices());
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<Vertex> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Vertex v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::find(dist.begin(), dist.end(), kUnreachable) == dist.end();
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> comp(g.num_vertices(), kUnreachable);
  std::uint32_t next = 0;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = next;
    std::deque<Vertex> queue{s};
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (comp[v] == kUnreachable) {
          comp[v] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::uint32_t diameter(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  std::uint32_t diam = 0;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    const auto dist = bfs_distances(g, s);
    for (const auto d : dist) {
      if (d == kUnreachable) return kUnreachable;
      diam = std::max(diam, d);
    }
  }
  return diam;
}

bool is_bipartite(const Graph& g, std::vector<std::uint8_t>* side) {
  std::vector<std::uint8_t> color(g.num_vertices(), 2);  // 2 = unset
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (color[s] != 2) continue;
    color[s] = 0;
    std::deque<Vertex> queue{s};
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (color[v] == 2) {
          color[v] = static_cast<std::uint8_t>(1 - color[u]);
          queue.push_back(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  if (side != nullptr) *side = std::move(color);
  return true;
}

std::uint32_t degeneracy(const Graph& g, std::vector<Vertex>* order) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue (Matula–Beck), O(n + m).
  std::vector<std::vector<Vertex>> buckets(max_deg + 1);
  std::vector<std::uint32_t> pos_degree = deg;
  for (Vertex v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::uint32_t degen = 0;
  if (order != nullptr) order->clear();
  std::uint32_t cursor = 0;
  for (Vertex peeled = 0; peeled < n; ++peeled) {
    while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
    // The current minimum may have decreased below `cursor`; rescan from 0
    // when the bucket at cursor yields nothing valid.
    Vertex v = kNoVertex;
    for (std::uint32_t b = std::min(cursor, max_deg); b <= max_deg; ++b) {
      while (!buckets[b].empty()) {
        const Vertex cand = buckets[b].back();
        buckets[b].pop_back();
        if (!removed[cand] && pos_degree[cand] == b) {
          v = cand;
          break;
        }
      }
      if (v != kNoVertex) {
        cursor = b > 0 ? b - 1 : 0;
        break;
      }
    }
    CSD_CHECK(v != kNoVertex);
    removed[v] = true;
    degen = std::max(degen, pos_degree[v]);
    if (order != nullptr) order->push_back(v);
    for (const Vertex w : g.neighbors(v)) {
      if (!removed[w]) {
        --pos_degree[w];
        buckets[pos_degree[w]].push_back(w);
      }
    }
  }
  return degen;
}

LayerDecomposition layer_decomposition(const Graph& g,
                                       std::uint32_t degree_threshold,
                                       std::uint32_t max_layers) {
  const Vertex n = g.num_vertices();
  LayerDecomposition out;
  out.layer.assign(n, kUnreachable);
  std::vector<std::uint32_t> remaining_degree(n);
  for (Vertex v = 0; v < n; ++v) remaining_degree[v] = g.degree(v);
  Vertex assigned = 0;
  for (std::uint32_t layer = 0; layer < max_layers && assigned < n; ++layer) {
    std::vector<Vertex> wave;
    for (Vertex v = 0; v < n; ++v)
      if (out.layer[v] == kUnreachable && remaining_degree[v] <= degree_threshold)
        wave.push_back(v);
    if (wave.empty()) break;  // stuck: remaining graph is too dense
    for (const Vertex v : wave) out.layer[v] = layer;
    // Degrees drop only after the whole wave is fixed: vertices peeled in
    // the same wave share a layer, exactly as in the distributed process.
    for (const Vertex v : wave)
      for (const Vertex w : g.neighbors(v))
        if (out.layer[w] == kUnreachable) --remaining_degree[w];
    assigned += static_cast<Vertex>(wave.size());
    out.num_layers = layer + 1;
  }
  for (Vertex v = 0; v < n; ++v)
    if (out.layer[v] == kUnreachable) out.unassigned.push_back(v);
  return out;
}

std::uint32_t max_up_degree(const Graph& g, const LayerDecomposition& d) {
  std::uint32_t worst = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (d.layer[v] == kUnreachable) continue;
    std::uint32_t up = 0;
    for (const Vertex w : g.neighbors(v))
      if (d.layer[w] != kUnreachable && d.layer[w] >= d.layer[v]) ++up;
    worst = std::max(worst, up);
  }
  return worst;
}

}  // namespace csd
