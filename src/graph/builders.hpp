// Graph builders and random generators used as workloads throughout the
// tests, examples and benchmark harnesses.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace csd::build {

/// Simple path on n vertices (n-1 edges): 0-1-...-(n-1).
Graph path(Vertex n);

/// Cycle C_n on n >= 3 vertices.
Graph cycle(Vertex n);

/// Complete graph K_n.
Graph complete(Vertex n);

/// Complete bipartite graph K_{a,b}; side A = [0,a), side B = [a, a+b).
Graph complete_bipartite(Vertex a, Vertex b);

/// Star K_{1,n}: center 0 with n leaves.
Graph star(Vertex leaves);

/// 2D grid graph rows × cols.
Graph grid(Vertex rows, Vertex cols);

/// The Petersen graph (girth 5, vertex-transitive; a useful C_4-free fixture).
Graph petersen();

/// Erdős–Rényi G(n, p): each edge iid with probability p.
Graph gnp(Vertex n, double p, Rng& rng);

/// Uniform random graph with exactly m edges (G(n, m)).
Graph gnm(Vertex n, std::uint64_t m, Rng& rng);

/// Random bipartite graph: sides a, b, each cross edge iid with prob p.
Graph random_bipartite(Vertex a, Vertex b, double p, Rng& rng);

/// Uniform random labelled tree on n vertices (Prüfer-sequence decoding).
Graph random_tree(Vertex n, Rng& rng);

/// Random d-regular-ish graph via random perfect matchings (multigraph edges
/// discarded, so degrees are ≤ d; good enough as a bounded-degree workload).
Graph random_bounded_degree(Vertex n, Vertex d, Rng& rng);

/// Erdős–Rényi *polarity graph* ER_q over GF(q), q an odd prime: vertices are
/// the q²+q+1 points of PG(2,q), with x ~ y iff x·y = 0 (mod q), x ≠ y.
/// C_4-free with ~½q(q+1)² edges — the extremal-density workload exercising
/// the §6 phase-I edge-bound logic (|E| ≈ ex(n, C_4)).
Graph polarity_graph(std::uint32_t q);

/// Point–line incidence graph of PG(2,q), q prime: bipartite on
/// 2(q²+q+1) vertices with (q+1)(q²+q+1) edges and girth exactly 6 —
/// the Zarankiewicz-extremal C_4-free bipartite graph.
Graph incidence_graph(std::uint32_t q);

/// Point–line incidence graph of the generalized quadrangle Q(4,q) (the
/// parabolic quadric in PG(4,q)), q an odd prime: bipartite on
/// 2(q+1)(q²+1) vertices with girth exactly 8 — C_4- and C_6-free at
/// near-extremal density, the hard negative for C_6 detection
/// (|E| ≈ ex(n, {C_4, C_6})).
Graph generalized_quadrangle_incidence(std::uint32_t q);

/// Disjoint union of `copies` copies of `g`.
Graph disjoint_copies(const Graph& g, Vertex copies);

/// Plant a copy of `pattern` into `host` on `pattern.num_vertices()` distinct
/// random host vertices (adding the missing edges). Returns the image
/// vertices in pattern order.
std::vector<Vertex> plant_subgraph(Graph& host, const Graph& pattern,
                                   Rng& rng);

/// A graph guaranteed to contain no cycle of length <= girth_below: start
/// from a random graph and delete an edge of every short cycle found
/// (deterministic given rng). Used as a *negative* C_2k fixture generator.
Graph random_high_girth(Vertex n, std::uint64_t target_edges,
                        Vertex girth_below, Rng& rng);

}  // namespace csd::build
