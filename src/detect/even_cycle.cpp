#include "detect/even_cycle.hpp"

#include <algorithm>
#include <deque>

#include "detect/id_set.hpp"
#include "support/check.hpp"
#include "support/mathutil.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

constexpr std::uint32_t kNoLayer = static_cast<std::uint32_t>(-1);

/// Role of a node in the phase-II prefix propagation, derived from its color.
struct Role {
  enum Kind : std::uint8_t { Origin, Increasing, Decreasing, Midpoint } kind;
  /// Prefix position for Increasing/Decreasing (1..k-1); 0/k otherwise.
  std::uint32_t position;
};

Role role_of_color(std::uint32_t color, std::uint32_t k) {
  if (color == 0) return {Role::Origin, 0};
  if (color < k) return {Role::Increasing, color};
  if (color == k) return {Role::Midpoint, k};
  return {Role::Decreasing, 2 * k - color};
}

class EvenCycleProgram final : public congest::NodeProgram {
 public:
  EvenCycleProgram(const EvenCycleConfig& cfg, EvenCycleProbe* probe)
      : cfg_(cfg), probe_(probe) {}

  void on_round(congest::NodeApi& api) override {
    if (api.round() == 0) setup(api);

    const std::uint64_t r = api.round();
    if (r <= sched_.phase1_rounds) {
      api.phase(r < sched_.phase1_rounds ? "phase1-pipeline"
                                         : "phase1-removal");
      phase1_round(api);
      if (r == sched_.phase1_rounds) {
        // Removal announcement: 1 = I am high-degree and drop out.
        wire::Writer w(api.scratch());
        w.boolean(removed_);
        api.broadcast(std::move(w).take());
      }
      return;
    }

    const std::uint64_t peel_begin = sched_.phase1_rounds + 1;
    const std::uint64_t peel_end = peel_begin + sched_.layer_waves;  // excl.
    if (r == peel_begin) record_removals(api);
    if (r >= peel_begin && r < peel_end) {
      api.phase("phase2-peel");
      peel_round(api, static_cast<std::uint32_t>(r - peel_begin));
      return;
    }
    api.phase(r == sched_.final_round ? "phase2-midpoint"
                                      : "phase2-propagate");
    if (r == peel_end) {
      // Unassigned active node after ⌈log n⌉+1 waves: the remaining graph is
      // denser than any C_2k-free graph can be — certifies a cycle.
      absorb_peels(api);
      if (!removed_ && layer_ == kNoLayer) api.reject();
    }

    propagation_round(api);

    if (r == sched_.final_round) {
      midpoint_check(api);
      CSD_CHECK_MSG(queue_.empty(), "phase-II token queue failed to drain");
      api.halt();
    }
  }

 private:
  // -- setup ------------------------------------------------------------
  void setup(congest::NodeApi& api) {
    sched_ = make_even_cycle_schedule(api.network_size(), cfg_);
    id_bits_ = wire::bits_for(api.namespace_size());
    hop_bits_ = wire::bits_for(2 * cfg_.k);
    pos_bits_ = wire::bits_for(cfg_.k + 1);
    layer_bits_ = wire::bits_for(sched_.layer_waves + 1);
    const std::uint64_t needed = std::max<std::uint64_t>(
        id_bits_ + hop_bits_, 1 + pos_bits_ + id_bits_ + layer_bits_);
    CSD_CHECK_MSG(api.bandwidth() == 0 || api.bandwidth() >= needed,
                  "bandwidth too small for C_2k detection");
    color1_ = static_cast<std::uint32_t>(api.rng().below(2 * cfg_.k));
    color2_ = static_cast<std::uint32_t>(api.rng().below(2 * cfg_.k));
    removed_ = api.degree() >= sched_.degree_threshold;
    phase1_seen_.init(api.namespace_size());
    token_seen_.init(api.namespace_size());
    incr_origins_.init(api.namespace_size());
    decr_origins_.init(api.namespace_size());
    neighbor_active_.assign(api.degree(), true);
    neighbor_unassigned_.assign(api.degree(), true);
    if (cfg_.enable_phase1 && color1_ == 0 &&
        api.degree() >= sched_.degree_threshold)
      phase1_queue_.push_back(api.id());
  }

  // -- phase I ----------------------------------------------------------
  void phase1_round(congest::NodeApi& api) {
    // Process incoming tokens (none in round 0).
    if (api.round() > 0) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader reader(*msg);
        const congest::NodeId origin = reader.u(id_bits_);
        const auto hop = static_cast<std::uint32_t>(reader.u(hop_bits_));
        if (origin == api.id() && hop == 2 * cfg_.k - 1) {
          api.reject();  // properly-colored 2k-cycle closed
          continue;
        }
        if (color1_ != hop + 1) continue;
        if (!phase1_seen_.insert(origin)) continue;
        phase1_queue_.push_back(origin);
      }
    }

    if (probe_ != nullptr) {
      probe_->max_phase1_queue = std::max<std::uint64_t>(
          probe_->max_phase1_queue, phase1_queue_.size());
      if (!phase1_queue_.empty())
        probe_->phase1_drained_round =
            std::max(probe_->phase1_drained_round, api.round() + 1);
    }

    if (api.round() == sched_.phase1_rounds) {
      // Deadline (Lemma 6.1): a busy queue certifies |E| > M (Lemma 6.3).
      if (!phase1_queue_.empty()) {
        api.reject();
        if (probe_ != nullptr) probe_->phase1_deadline_reject = true;
      }
      phase1_queue_.clear();
      phase1_seen_.clear();
      return;  // removal bit is broadcast by the caller this round
    }

    if (!phase1_queue_.empty()) {
      const congest::NodeId origin = phase1_queue_.front();
      phase1_queue_.pop_front();
      wire::Writer w(api.scratch());
      w.u(origin, id_bits_);
      w.u(color1_, hop_bits_);
      api.broadcast(std::move(w).take());
    }
  }

  // -- phase II: peeling --------------------------------------------------
  void record_removals(congest::NodeApi& api) {
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      const auto* msg = api.inbox(p);
      CSD_CHECK_MSG(msg != nullptr, "missing removal announcement");
      wire::Reader reader(*msg);
      if (reader.boolean()) {
        neighbor_active_[p] = false;
        neighbor_unassigned_[p] = false;
      }
    }
  }

  void peel_round(congest::NodeApi& api, std::uint32_t wave) {
    if (removed_) return;
    if (wave > 0) absorb_peels(api);
    if (layer_ != kNoLayer) return;
    std::uint64_t remaining = 0;
    for (std::uint32_t p = 0; p < api.degree(); ++p)
      if (neighbor_unassigned_[p]) ++remaining;
    if (remaining <= sched_.peel_degree) {
      layer_ = wave;
      wire::Writer w(api.scratch());
      w.boolean(true);
      api.broadcast(std::move(w).take());
    }
  }

  /// Mark neighbors that announced peeling in the previous round.
  void absorb_peels(congest::NodeApi& api) {
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      const auto* msg = api.inbox(p);
      if (msg == nullptr) continue;
      wire::Reader reader(*msg);
      if (reader.boolean()) neighbor_unassigned_[p] = false;
    }
  }

  // -- phase II: prefix propagation ---------------------------------------
  struct Token {
    congest::NodeId origin;
    std::uint32_t origin_layer;
    bool decreasing;
    std::uint32_t position;  // position of the *sender* of this token
  };

  void propagation_round(congest::NodeApi& api) {
    const std::uint64_t r = api.round();
    if (removed_ || layer_ == kNoLayer) return;
    const Role role = role_of_color(color2_, cfg_.k);

    // Receive tokens (any round past the first propagation window start).
    if (r > sched_.window_start[1]) receive_tokens(api, role);

    // Origin announcement in window 1.
    if (r == sched_.window_start[1] && role.kind == Role::Origin &&
        cfg_.enable_phase2) {
      wire::Writer w(api.scratch());
      w.boolean(false);
      w.u(0, pos_bits_);
      w.u(api.id(), id_bits_);
      w.u(layer_, layer_bits_);
      api.broadcast(std::move(w).take());
      return;
    }

    // Forwarding windows 2..k (positions 1..k-1 send).
    if ((role.kind == Role::Increasing || role.kind == Role::Decreasing) &&
        in_send_window(r, role.position) && !queue_.empty()) {
      const Token token = queue_.front();
      queue_.pop_front();
      wire::Writer w(api.scratch());
      w.boolean(token.decreasing);
      w.u(role.position, pos_bits_);
      w.u(token.origin, id_bits_);
      w.u(token.origin_layer, layer_bits_);
      api.broadcast(std::move(w).take());
    }
  }

  bool in_send_window(std::uint64_t r, std::uint32_t position) const {
    const std::uint32_t window = position + 1;  // position p sends in w_{p+1}
    if (window > cfg_.k) return false;
    const std::uint64_t begin = sched_.window_start[window];
    const std::uint64_t end = window == cfg_.k
                                  ? sched_.final_round
                                  : sched_.window_start[window + 1];
    return r >= begin && r < end;
  }

  void receive_tokens(congest::NodeApi& api, const Role& role) {
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      const auto* msg = api.inbox(p);
      if (msg == nullptr || !neighbor_active_[p]) continue;
      wire::Reader reader(*msg);
      Token token;
      token.decreasing = reader.boolean();
      token.position = static_cast<std::uint32_t>(reader.u(pos_bits_));
      token.origin = reader.u(id_bits_);
      token.origin_layer =
          static_cast<std::uint32_t>(reader.u(layer_bits_));
      // Layer constraint: every cycle node must lie on a layer <= ℓ(u0).
      if (layer_ == kNoLayer || token.origin_layer < layer_) continue;

      if (role.kind == Role::Midpoint) {
        if (token.position != cfg_.k - 1) continue;
        auto& set = token.decreasing ? decr_origins_ : incr_origins_;
        set.insert(token.origin);
        continue;
      }
      if (role.kind != Role::Increasing && role.kind != Role::Decreasing)
        continue;
      const bool want_decreasing = role.kind == Role::Decreasing;
      // Position-0 announcements are direction-neutral: position-1 nodes of
      // both directions pick them up and stamp their own direction.
      if (token.position != role.position - 1) continue;
      if (token.position > 0 && token.decreasing != want_decreasing) continue;
      if (!token_seen_.insert(token.origin)) continue;
      token.position = role.position;
      token.decreasing = want_decreasing;  // stamp direction at position 1
      queue_.push_back(token);
    }
  }

  void midpoint_check(congest::NodeApi& api) {
    if (removed_ || layer_ == kNoLayer) return;
    if (role_of_color(color2_, cfg_.k).kind != Role::Midpoint) return;
    // Increasing and decreasing prefixes meet at the midpoint: C_2k. With
    // dense id sets this is one word-parallel intersection.
    if (intersects(incr_origins_, decr_origins_)) api.reject();
  }

  // -- state --------------------------------------------------------------
  EvenCycleConfig cfg_;
  EvenCycleProbe* probe_ = nullptr;
  EvenCycleSchedule sched_;
  unsigned id_bits_ = 0, hop_bits_ = 0, pos_bits_ = 0, layer_bits_ = 0;
  std::uint32_t color1_ = 0, color2_ = 0;
  bool removed_ = false;
  std::uint32_t layer_ = kNoLayer;
  std::vector<bool> neighbor_active_;
  std::vector<bool> neighbor_unassigned_;
  std::deque<congest::NodeId> phase1_queue_;
  IdSet phase1_seen_;
  std::deque<Token> queue_;
  IdSet token_seen_;
  IdSet incr_origins_;
  IdSet decr_origins_;
};

}  // namespace

EvenCycleSchedule make_even_cycle_schedule(std::uint64_t n,
                                           const EvenCycleConfig& cfg) {
  CSD_CHECK_MSG(cfg.k >= 2, "C_2k detection requires k >= 2");
  CSD_CHECK_MSG(n >= 2, "network too small");
  EvenCycleSchedule s;
  s.n = n;
  s.k = cfg.k;
  s.edge_bound_m = even_cycle_edge_bound(n, cfg.k, cfg.c_num, cfg.c_den);
  // T = ⌈n^{1/(k-1)}⌉ (degree threshold n^δ, δ = 1/(k-1)).
  s.degree_threshold = ceil_kth_root(n, cfg.k - 1);
  // d = ⌈4M/n⌉: twice the largest average degree a C_2k-free remainder can
  // have, so each peel wave removes at least half the remaining nodes.
  s.peel_degree = std::max<std::uint64_t>(1, ceil_div(4 * s.edge_bound_m, n));
  // R1 = ⌈2M/T⌉ + 2k + 1: token origins bound + travel slack.
  s.phase1_rounds =
      ceil_div(2 * s.edge_bound_m, s.degree_threshold) + 2 * cfg.k + 1;
  s.layer_waves = ceil_log2(n) + 1;

  // Propagation windows: w_1 is one round; w_{p+1} has length d·T^{p-1},
  // covering the worst-case number of distinct prefix tokens at position p.
  s.window_start.assign(cfg.k + 1, 0);
  std::uint64_t cursor = s.phase1_rounds + 1 + s.layer_waves;
  s.window_start[1] = cursor;
  cursor += 1;
  for (std::uint32_t w = 2; w <= cfg.k; ++w) {
    s.window_start[w] = cursor;
    cursor += s.peel_degree * ipow(s.degree_threshold, w - 2);
  }
  s.final_round = cursor;  // one round for the midpoint's last receive
  return s;
}

congest::ProgramFactory even_cycle_program(const EvenCycleConfig& cfg,
                                           EvenCycleProbe* probe) {
  return [cfg, probe](std::uint32_t) {
    return std::make_unique<EvenCycleProgram>(cfg, probe);
  };
}

std::uint64_t even_cycle_min_bandwidth(std::uint64_t n,
                                       const EvenCycleConfig& cfg) {
  const EvenCycleSchedule s = make_even_cycle_schedule(n, cfg);
  const unsigned id_bits = wire::bits_for(n);
  const unsigned hop_bits = wire::bits_for(2 * cfg.k);
  const unsigned pos_bits = wire::bits_for(cfg.k + 1);
  const unsigned layer_bits = wire::bits_for(s.layer_waves + 1);
  return std::max<std::uint64_t>(id_bits + hop_bits,
                                 1 + pos_bits + id_bits + layer_bits);
}

congest::RunOutcome detect_even_cycle(const Graph& g,
                                      const EvenCycleConfig& cfg,
                                      std::uint64_t bandwidth,
                                      std::uint64_t seed) {
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = bandwidth;
  net_cfg.seed = seed;
  net_cfg.trace = cfg.trace;
  net_cfg.shard = cfg.shard;
  net_cfg.telemetry = cfg.telemetry;
  net_cfg.max_rounds =
      make_even_cycle_schedule(std::max<std::uint64_t>(2, g.num_vertices()),
                               cfg)
          .total_rounds() +
      1;
  return congest::run_amplified(g, net_cfg, even_cycle_program(cfg),
                                cfg.repetitions, cfg.amplify);
}

}  // namespace csd::detect
