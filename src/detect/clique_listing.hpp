// Deterministic K_s listing in the Congested Clique in Õ(n^{1-2/s}) rounds —
// the matching upper bound for the paper's Ω̃(n^{1-2/s}) listing lower bound
// (§1.1, extending [Izumi–Le Gall] / [Pandurangan et al.] from triangles to
// s-cliques via Lemma 1.3).
//
// Scheme (Dolev–Lenzen–Peled style, generalized):
//   * vertices are split into g = ⌈n^{1/s}⌉ groups (v ↦ v mod g);
//   * every size-s *multiset* of groups is a tuple, assigned round-robin to
//     the n nodes (there are C(g+s-1, s) ≈ n tuples);
//   * each edge is forwarded by its lower endpoint to the owner of every
//     tuple whose multiset supports both endpoint groups, one edge per
//     destination per round (each ordered node pair carries ≤ 2·⌈log n⌉
//     bits per round);
//   * owners enumerate the s-cliques whose group multiset equals their
//     tuples, over the edges they received. Every s-clique is listed by
//     exactly one owner.
//
// Per-node traffic is O(s² n^{2-2/s}) edge records against Θ(n) parallel
// links, so the round count scales as n^{1-2/s} (measured by the LIST
// bench).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

/// Sink for the distributed output: cliques listed per node (topology
/// index). Lifetime must cover the run.
struct CliqueListingResult {
  std::vector<std::vector<std::vector<Vertex>>> cliques_by_node;

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& per_node : cliques_by_node) t += per_node.size();
    return t;
  }

  /// All cliques, each sorted, deduplicated and sorted globally.
  std::vector<std::vector<Vertex>> all_sorted() const;
};

/// Deterministic round budget for listing K_s copies of `input` (computed
/// by dry-running the routing plan).
std::uint64_t clique_listing_round_budget(const Graph& input, std::uint32_t s);

std::uint64_t clique_listing_min_bandwidth(std::uint64_t n);

/// Runs the listing over a congested clique on input.num_vertices() nodes.
/// Returns the run outcome; listed cliques land in *result.
congest::RunOutcome list_cliques_congested_clique(const Graph& input,
                                                  std::uint32_t s,
                                                  std::uint64_t bandwidth,
                                                  CliqueListingResult* result);

/// Number of groups used for an n-node input.
std::uint32_t clique_listing_groups(std::uint64_t n, std::uint32_t s);

}  // namespace csd::detect
