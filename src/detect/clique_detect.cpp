#include "detect/clique_detect.hpp"

#include <algorithm>
#include <vector>

#include "graph/oracle.hpp"
#include "support/check.hpp"
#include "support/mathutil.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

class CliqueDetectProgram final : public congest::NodeProgram {
 public:
  explicit CliqueDetectProgram(std::uint32_t s) : s_(s) {}

  void on_round(congest::NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.namespace_size());

    api.phase(api.round() == 0 ? "announce" : "stream");
    if (api.round() == 0) {
      CSD_CHECK_MSG(api.bandwidth() == 0 || api.bandwidth() >= id_bits,
                    "bandwidth too small for neighborhood exchange");
      // Announce degree; also precompute the outgoing id stream.
      expected_bits_.assign(api.degree(), 0);
      received_.assign(api.degree(), BitVec{});
      std::vector<congest::NodeId> sorted_neighbors;
      for (std::uint32_t p = 0; p < api.degree(); ++p)
        sorted_neighbors.push_back(api.neighbor_id(p));
      std::sort(sorted_neighbors.begin(), sorted_neighbors.end());
      for (const auto nid : sorted_neighbors)
        outgoing_.append_bits(nid, id_bits);
      wire::Writer w;
      w.u(api.degree(), id_bits);
      api.broadcast(std::move(w).take());
      return;
    }

    if (api.round() == 1) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        CSD_CHECK_MSG(msg != nullptr, "missing degree announcement");
        wire::Reader r(*msg);
        expected_bits_[p] = r.u(id_bits) * id_bits;
      }
    } else if (api.round() >= 2) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg != nullptr) received_[p].append(*msg);
      }
    }

    // Stream the next chunk of the adjacency list.
    if (api.round() >= 1 && cursor_ < outgoing_.size()) {
      const std::uint64_t chunk =
          api.bandwidth() == 0
              ? outgoing_.size() - cursor_
              : std::min<std::uint64_t>(api.bandwidth(),
                                        outgoing_.size() - cursor_);
      BitVec payload;
      for (std::uint64_t i = 0; i < chunk; ++i)
        payload.push_back(outgoing_.get(cursor_ + i));
      cursor_ += chunk;
      api.broadcast(payload);
    }

    // Done when everything is sent and every neighbor's list is complete.
    if (api.round() >= 2 && cursor_ >= outgoing_.size() && all_received()) {
      decide(api, id_bits);
      api.halt();
    }
  }

 private:
  bool all_received() const {
    for (std::size_t p = 0; p < received_.size(); ++p)
      if (received_[p].size() < expected_bits_[p]) return false;
    return true;
  }

  void decide(congest::NodeApi& api, unsigned id_bits) {
    if (s_ <= 1) {
      api.reject();  // K_1 is always present
      return;
    }
    if (api.degree() + 1 < s_) return;
    // Induced neighborhood as adjacency bit-rows over the ports: edge
    // {p, q} (p < q) iff port q's id appears in port p's streamed list —
    // the same decision rule as the dense-graph construction this replaces,
    // but the clique search now intersects candidate sets 64 ports at a
    // time (oracle::has_clique_rows).
    const std::uint32_t d = api.degree();
    std::vector<std::pair<congest::NodeId, std::uint32_t>> by_id(d);
    for (std::uint32_t p = 0; p < d; ++p) by_id[p] = {api.neighbor_id(p), p};
    std::sort(by_id.begin(), by_id.end());
    std::vector<BitVec> rows(d, BitVec(d));
    for (std::uint32_t p = 0; p < d; ++p) {
      CSD_CHECK(received_[p].size() == expected_bits_[p]);
      for (std::uint64_t off = 0; off + id_bits <= received_[p].size();
           off += id_bits) {
        const congest::NodeId nid = received_[p].read_bits(off, id_bits);
        const auto it = std::lower_bound(
            by_id.begin(), by_id.end(),
            std::make_pair(nid, std::uint32_t{0}));
        if (it == by_id.end() || it->first != nid) continue;
        const std::uint32_t q = it->second;
        if (q <= p) continue;  // edge {p, q} is decided by the lower port
        rows[p].set(q);
        rows[q].set(p);
      }
    }
    if (oracle::has_clique_rows(rows, s_ - 1)) api.reject();
  }

  std::uint32_t s_;
  BitVec outgoing_;
  std::uint64_t cursor_ = 0;
  std::vector<std::uint64_t> expected_bits_;
  std::vector<BitVec> received_;
};

}  // namespace

congest::ProgramFactory clique_detect_program(std::uint32_t s) {
  CSD_CHECK_MSG(s >= 2, "clique detection needs s >= 2");
  return [s](std::uint32_t) { return std::make_unique<CliqueDetectProgram>(s); };
}

std::uint64_t clique_detect_min_bandwidth(std::uint64_t n) {
  return wire::bits_for(n);
}

std::uint64_t clique_detect_round_budget(std::uint64_t n,
                                         std::uint64_t max_degree,
                                         std::uint64_t bandwidth) {
  const std::uint64_t stream_bits = max_degree * wire::bits_for(n);
  const std::uint64_t stream_rounds =
      bandwidth == 0 ? 1 : ceil_div(stream_bits, bandwidth);
  return stream_rounds + 4;
}

congest::RunOutcome detect_clique(const Graph& g, std::uint32_t s,
                                  std::uint64_t bandwidth, std::uint64_t seed,
                                  const obs::TraceOptions& trace,
                                  const congest::ShardSpec& shard,
                                  obs::Telemetry* telemetry) {
  congest::NetworkConfig cfg;
  cfg.bandwidth = bandwidth;
  cfg.seed = seed;
  cfg.trace = trace;
  cfg.shard = shard;
  cfg.telemetry = telemetry;
  cfg.max_rounds =
      clique_detect_round_budget(g.num_vertices(), g.max_degree(), bandwidth) +
      2;
  return congest::run_congest(g, cfg, clique_detect_program(s));
}

}  // namespace csd::detect
