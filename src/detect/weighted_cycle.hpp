// Weighted cycle detection — the problem behind the first near-quadratic
// CONGEST lower bounds ([CKP17] = reference [8], discussed in §1.2): given
// a target W, decide whether the graph has a cycle of length exactly L and
// total weight exactly W.
//
// The natural algorithm is the color-coded pipelined BFS of
// detect/pipelined_cycle with weight-accumulating tokens
// (origin, hop, weight-so-far). The price of the weights is visible in the
// model: tokens with distinct accumulated weights cannot be deduplicated,
// so up to W+1 tokens per origin pipe through every node and the round
// budget grows to O(n·(W+1) + L) — for W = poly(n) this is the
// near-quadratic regime, which is exactly why [8] could prove Ω̃(n²)
// hardness for this problem while the unweighted version stays O(n).
// (Theorem 1.2 of our paper then removed the weights from the superlinear
// story.)
#pragma once

#include <cstdint>
#include <functional>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

/// Symmetric edge-weight oracle over topology indices (ids == indices).
using EdgeWeightFn = std::function<std::uint64_t(Vertex, Vertex)>;

struct WeightedCycleConfig {
  std::uint32_t length = 4;       // L >= 3
  std::uint64_t target_weight = 0;  // W
  /// Upper bound on any single accumulated weight (wire width); accumulated
  /// weights above target_weight are pruned, so target_weight suffices.
  std::uint32_t repetitions = 1;
  /// How repetitions are driven: worker threads + early exit after the
  /// first rejecting repetition. Results are jobs-count independent.
  congest::AmplifyOptions amplify;
};

congest::ProgramFactory weighted_cycle_program(const WeightedCycleConfig& cfg,
                                               EdgeWeightFn weight);

/// Round budget: tokens cannot be deduplicated across weights, so the
/// pipeline depth is n·(W+1) + L + 1 — the weight blow-up in the open.
std::uint64_t weighted_cycle_round_budget(std::uint64_t n,
                                          const WeightedCycleConfig& cfg);

std::uint64_t weighted_cycle_min_bandwidth(std::uint64_t namespace_size,
                                           const WeightedCycleConfig& cfg);

congest::RunOutcome detect_weighted_cycle(const Graph& g,
                                          const WeightedCycleConfig& cfg,
                                          const EdgeWeightFn& weight,
                                          std::uint64_t bandwidth,
                                          std::uint64_t seed);

}  // namespace csd::detect
