// Triangle-vs-hexagon distinguishers on 2-regular graphs — the upper-bound
// side of Theorem 4.1.
//
// The c-bit ID-exchange algorithm: in round 0 every node sends the low c
// bits of its identifier on both ports; in round 1 it cross-forwards what it
// received (port 0's bits go out on port 1 and vice versa); in round 2 each
// node compares what came back with the (truncated) identifiers of its own
// neighbors. On a triangle the "neighbor of my neighbor" is my other
// neighbor, so both comparisons match and the node rejects. On a 6-cycle a
// match requires an identifier-truncation collision.
//
//   * c = ⌈log2 N⌉ (full identifiers): never wrong — the O(log N) upper
//     bound that Theorem 4.1 shows is tight.
//   * c < log2 N: the §4 fooling adversary finds an identifier assignment
//     that makes some node reject a hexagon (see lowerbound/fooling).
//
// Total communication: 4c bits per node, prefix-free (fixed width).
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

/// Factory for the c-bit ID-exchange distinguisher. Requires a 2-regular
/// topology (every node must have degree exactly 2) and bandwidth >= c.
congest::ProgramFactory id_exchange_triangle_program(std::uint32_t c_bits);

/// Variant that exchanges c-bit *hashes* of identifiers instead of their
/// low bits (salted splitmix). Used to show the §4 adversary is generic:
/// it defeats any deterministic c-bit scheme, not just truncation — the
/// transcript/box machinery never looks inside the messages.
congest::ProgramFactory hashed_id_exchange_triangle_program(
    std::uint32_t c_bits, std::uint64_t salt);

/// Bits of identifier needed for a sound distinguisher on namespace size N.
std::uint32_t id_exchange_sound_bits(std::uint64_t namespace_size);

}  // namespace csd::detect
