// Distributed property testing of triangle-freeness — the relaxation the
// paper contrasts itself against ("they studied the property testing
// relaxation... Here we consider the exact version", §1.2, citing
// [CFSV16]).
//
// Edge-sampling tester: every round, each node v of degree >= 2 picks two
// random incident ports (u, w) and asks u whether w is its neighbor; u
// answers with one bit. A "yes" certifies the triangle {v, u, w}, so the
// tester is one-sided. Queries and replies are pipelined, so T query
// rounds cost T + 2 rounds total with Θ(log n)-bit messages, independent
// of n — against this, the exact problem costs Ω(Δ) bandwidth in one round
// (Thm 5.1) and Ω(log n) bits deterministically (Thm 4.1).
//
// Guarantee (property testing): graphs ε-far from triangle-free are
// rejected with constant probability within O(poly(1/ε)) query rounds;
// a graph with a single triangle may legitimately be missed.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

struct TriangleTesterConfig {
  /// Query rounds (each node issues one neighbor-pair query per round).
  std::uint32_t query_rounds = 32;
};

congest::ProgramFactory triangle_tester_program(
    const TriangleTesterConfig& cfg);

std::uint64_t triangle_tester_round_budget(const TriangleTesterConfig& cfg);

/// Bits per message: one id plus three flag/answer bits.
std::uint64_t triangle_tester_min_bandwidth(std::uint64_t namespace_size);

/// End-to-end run.
congest::RunOutcome test_triangle_freeness(const Graph& g,
                                           const TriangleTesterConfig& cfg,
                                           std::uint64_t bandwidth,
                                           std::uint64_t seed);

}  // namespace csd::detect
