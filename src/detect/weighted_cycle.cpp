#include "detect/weighted_cycle.hpp"

#include <deque>
#include <unordered_set>

#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

class WeightedCycleProgram final : public congest::NodeProgram {
 public:
  WeightedCycleProgram(const WeightedCycleConfig& cfg, EdgeWeightFn weight)
      : cfg_(cfg), weight_(std::move(weight)) {}

  void on_round(congest::NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.namespace_size());
    const unsigned hop_bits = wire::bits_for(cfg_.length);
    const unsigned weight_bits = wire::bits_for(cfg_.target_weight + 1);

    if (api.round() == 0) {
      CSD_CHECK_MSG(api.bandwidth() == 0 ||
                        api.bandwidth() >=
                            id_bits + hop_bits + weight_bits,
                    "bandwidth too small for weighted cycle detection");
      color_ = static_cast<std::uint32_t>(api.rng().below(cfg_.length));
      budget_ = weighted_cycle_round_budget(api.network_size(), cfg_);
      if (color_ == 0 && api.degree() > 0) queue_.push_back({api.id(), 0});
    } else {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader reader(*msg);
        const congest::NodeId origin = reader.u(id_bits);
        const auto hop = static_cast<std::uint32_t>(reader.u(hop_bits));
        std::uint64_t acc = reader.u(weight_bits);
        // The token pays for the edge it just crossed.
        acc += weight_(static_cast<Vertex>(api.neighbor_id(p)),
                       static_cast<Vertex>(api.id()));
        if (acc > cfg_.target_weight) continue;  // can only grow: prune
        if (origin == api.id() && hop == cfg_.length - 1) {
          if (acc == cfg_.target_weight) api.reject();
          continue;
        }
        if (color_ != hop + 1) continue;
        // Weights forbid per-origin dedup: distinct accumulated weights are
        // distinct tokens (this is the blow-up).
        if (!seen_.insert(origin * (cfg_.target_weight + 1) + acc).second)
          continue;
        queue_.push_back({origin, acc});
      }
    }

    if (!queue_.empty()) {
      const auto [origin, acc] = queue_.front();
      queue_.pop_front();
      wire::Writer w(api.scratch());
      w.u(origin, id_bits);
      w.u(color_, hop_bits);
      w.u(acc, weight_bits);
      api.broadcast(std::move(w).take());
    }

    if (api.round() + 1 >= budget_) {
      CSD_CHECK_MSG(queue_.empty(), "weighted cycle queue failed to drain");
      api.halt();
    }
  }

 private:
  WeightedCycleConfig cfg_;
  EdgeWeightFn weight_;
  std::uint32_t color_ = 0;
  std::uint64_t budget_ = 0;
  std::deque<std::pair<congest::NodeId, std::uint64_t>> queue_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace

congest::ProgramFactory weighted_cycle_program(const WeightedCycleConfig& cfg,
                                               EdgeWeightFn weight) {
  CSD_CHECK_MSG(cfg.length >= 3, "cycle length must be >= 3");
  CSD_CHECK_MSG(weight != nullptr, "weight function required");
  return [cfg, weight](std::uint32_t) {
    return std::make_unique<WeightedCycleProgram>(cfg, weight);
  };
}

std::uint64_t weighted_cycle_round_budget(std::uint64_t n,
                                          const WeightedCycleConfig& cfg) {
  return n * (cfg.target_weight + 1) + cfg.length + 1;
}

std::uint64_t weighted_cycle_min_bandwidth(std::uint64_t namespace_size,
                                           const WeightedCycleConfig& cfg) {
  return wire::bits_for(namespace_size) + wire::bits_for(cfg.length) +
         wire::bits_for(cfg.target_weight + 1);
}

congest::RunOutcome detect_weighted_cycle(const Graph& g,
                                          const WeightedCycleConfig& cfg,
                                          const EdgeWeightFn& weight,
                                          std::uint64_t bandwidth,
                                          std::uint64_t seed) {
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = bandwidth;
  net_cfg.seed = seed;
  net_cfg.max_rounds = weighted_cycle_round_budget(g.num_vertices(), cfg) + 1;
  return congest::run_amplified(g, net_cfg,
                                weighted_cycle_program(cfg, weight),
                                cfg.repetitions, cfg.amplify);
}

}  // namespace csd::detect
