// Linear-round C_L detection via color-coded pipelined BFS.
//
// This is the folklore O(n + L)-round CONGEST algorithm the paper uses as
// the yardstick ("It is easy to see that O(n) rounds suffice", §1.1): every
// node picks a random color in {0,...,L-1}; color-0 nodes launch a BFS token
// carrying (origin id, hop count); a token at hop i is forwarded only by
// nodes colored i+1; if the origin receives its own token at hop L-1, a
// properly-colored — hence simple — L-cycle has been traversed and the node
// rejects. One queued token is broadcast per round (pipelining), so all
// queues drain within #origins + L rounds.
//
// One-sided error: rejection always certifies a real L-cycle; detection of
// an existing cycle happens with probability >= L^{-L} per repetition and is
// amplified by run_amplified.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

struct PipelinedCycleConfig {
  /// Cycle length to detect (L >= 3).
  std::uint32_t length = 3;
  /// Independent color-coding repetitions (amplification).
  std::uint32_t repetitions = 1;
  /// How repetitions are driven: worker threads + early exit after the
  /// first rejecting repetition. Results are jobs-count independent.
  congest::AmplifyOptions amplify;
  /// Per-round observability for every repetition's run.
  obs::TraceOptions trace;
  /// Sharded superstep execution of each repetition (congest/shard.hpp);
  /// workers == 0 keeps the classic engine. Bit-identical either way.
  congest::ShardSpec shard;
  /// Optional csd-metrics-v2 plane, forwarded to every repetition's engine
  /// (non-owning, write-only; nullptr = zero cost).
  obs::Telemetry* telemetry = nullptr;
};

/// Program factory for one repetition (colors drawn from the network seed).
congest::ProgramFactory pipelined_cycle_program(std::uint32_t length);

/// Round budget one repetition needs on an n-node network.
std::uint64_t pipelined_cycle_round_budget(std::uint64_t n,
                                           std::uint32_t length);

/// Minimum bandwidth (bits) the algorithm needs on an n-node network.
std::uint64_t pipelined_cycle_min_bandwidth(std::uint64_t n,
                                            std::uint32_t length);

/// Full detection run: amplifies over cfg.repetitions.
congest::RunOutcome detect_cycle_pipelined(const Graph& g,
                                           const PipelinedCycleConfig& cfg,
                                           std::uint64_t bandwidth,
                                           std::uint64_t seed);

}  // namespace csd::detect
