// Sublinear C_2k detection — Theorem 1.1 / §6 of the paper.
//
// Two phases, both color-coded:
//
//   Phase I ("high-degree"): every node draws a color in {0,...,2k-1}; nodes
//   with degree >= T = ⌈n^{1/(k-1)}⌉ and color 0 launch a color-coded BFS
//   token (origin, hop); tokens are pipelined one-per-round. If the graph is
//   within the Turán edge budget M = c·n^{1+1/k} ⊇ ex(n, C_2k), there are at
//   most 2M/T token origins, so all queues drain within R1 = ⌈2M/T⌉ + 2k
//   rounds (Lemma 6.1); a queue still busy at the deadline certifies
//   |E| > M >= ex(n, C_2k), which itself certifies a 2k-cycle (Lemma 6.3).
//
//   Phase II ("low-degree remainder"): high-degree nodes drop out; the rest
//   peel themselves into layers, each wave removing nodes with at most
//   d = ⌈4M/n⌉ remaining neighbors, for ⌈log2 n⌉+1 waves (up-degree <= d;
//   nodes left unassigned certify density ⇒ a cycle). Fresh colors are
//   drawn; color-0 nodes announce (id, layer); their up-neighbors colored 1
//   and 2k-1 start increasing/decreasing prefix tokens that only descend
//   layers; at color k the two directions meet and close the cycle.
//
// Every rejection certifies a real 2k-cycle (one-sided error, Lemma 6.3 and
// its phase-II analogue); an existing 2k-cycle is caught with probability
// >= (2k)^{-2k} per repetition (Corollary 6.2 / Claim 6.4), amplified by
// repetitions. The total round budget is O(n^{1-1/(k(k-1))}) for constant c.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

struct EvenCycleConfig {
  /// Detect C_{2k}; k >= 2.
  std::uint32_t k = 2;
  /// Turán-constant numerator/denominator: M = ⌈(c_num/c_den)·n^{1+1/k}⌉.
  /// Must satisfy M >= ex(n, C_2k) for the "too many edges" rejections to be
  /// sound; the default 4 covers every instance this library generates (the
  /// true constant is O(k) by Bondy–Simonovits).
  std::uint64_t c_num = 4;
  std::uint64_t c_den = 1;
  /// Independent repetitions (amplification).
  std::uint32_t repetitions = 1;
  /// How repetitions are driven: worker threads + early exit after the
  /// first rejecting repetition. Results are jobs-count independent.
  congest::AmplifyOptions amplify;
  /// Ablation knobs (used by the ABL bench): disabling a phase keeps the
  /// round schedule but suppresses that phase's token initiation, so the
  /// other phase's behaviour is isolated.
  bool enable_phase1 = true;
  bool enable_phase2 = true;
  /// Per-round observability; the amplified outcome carries the traces of
  /// all executed repetitions appended in repetition order.
  obs::TraceOptions trace;
  /// Sharded superstep execution of each repetition (congest/shard.hpp);
  /// workers == 0 keeps the classic engine. Bit-identical either way.
  congest::ShardSpec shard;
  /// Optional csd-metrics-v2 plane, forwarded to every repetition's engine
  /// (non-owning, write-only; nullptr = zero cost).
  obs::Telemetry* telemetry = nullptr;
};

/// Deterministic round schedule shared by all nodes (computed from n, k, M).
struct EvenCycleSchedule {
  std::uint64_t n = 0;
  std::uint32_t k = 0;
  std::uint64_t edge_bound_m = 0;     // M
  std::uint64_t degree_threshold = 0;  // T = ⌈n^{1/(k-1)}⌉
  std::uint64_t peel_degree = 0;       // d = max(1, ⌈4M/n⌉)
  std::uint64_t phase1_rounds = 0;     // R1
  std::uint64_t layer_waves = 0;       // ⌈log2 n⌉ + 1
  /// First round of each propagation window i = 1..k-1 (window 1 is the
  /// color-0 announcement round; windows use absolute round numbers).
  std::vector<std::uint64_t> window_start;
  std::uint64_t final_round = 0;  // last round (midpoint check + halt)

  std::uint64_t total_rounds() const { return final_round + 1; }
};

EvenCycleSchedule make_even_cycle_schedule(std::uint64_t n,
                                           const EvenCycleConfig& cfg);

/// Optional instrumentation sink (Lemma 6.1): records, across all nodes of
/// a repetition, the largest phase-I queue length ever observed and the
/// last round at which any phase-I queue went empty. Lemma 6.1 asserts
/// drain by round R1 whenever |E| <= M.
struct EvenCycleProbe {
  std::uint64_t max_phase1_queue = 0;
  std::uint64_t phase1_drained_round = 0;
  bool phase1_deadline_reject = false;
};

/// Program factory for one repetition. `probe` (optional) must outlive the
/// run.
congest::ProgramFactory even_cycle_program(const EvenCycleConfig& cfg,
                                           EvenCycleProbe* probe = nullptr);

/// Minimum bandwidth (bits) required on an n-node network.
std::uint64_t even_cycle_min_bandwidth(std::uint64_t n,
                                       const EvenCycleConfig& cfg);

/// Full detection run with amplification.
congest::RunOutcome detect_even_cycle(const Graph& g,
                                      const EvenCycleConfig& cfg,
                                      std::uint64_t bandwidth,
                                      std::uint64_t seed);

}  // namespace csd::detect
