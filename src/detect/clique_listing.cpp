#include "detect/clique_listing.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "congest/clique_router.hpp"
#include "support/check.hpp"
#include "support/combinatorics.hpp"
#include "support/mathutil.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

/// Static ownership plan shared by all nodes (derived from n, s).
class ListingPlan {
 public:
  ListingPlan(std::uint32_t n, std::uint32_t s)
      : n_(n),
        s_(s),
        groups_(clique_listing_groups(n, s)),
        num_tuples_(binomial(groups_ + s - 1, s)) {
    CSD_CHECK(n >= 1 && s >= 2);
  }

  std::uint32_t groups() const { return groups_; }
  std::uint64_t num_tuples() const { return num_tuples_; }
  std::uint32_t group_of(Vertex v) const { return v % groups_; }
  Vertex owner_of(std::uint64_t tuple_rank) const {
    return static_cast<Vertex>(tuple_rank % n_);
  }

  /// Sorted group multiset of a tuple (stars-and-bars decoding).
  std::vector<std::uint32_t> tuple_groups(std::uint64_t rank) const {
    auto subset = unrank_k_subset(rank, groups_ + s_ - 1, s_);
    for (std::uint32_t j = 0; j < s_; ++j) subset[j] -= j;
    return subset;  // non-decreasing values in [0, groups)
  }

  std::uint64_t tuple_rank(std::vector<std::uint32_t> sorted_groups) const {
    CSD_CHECK(sorted_groups.size() == s_);
    for (std::uint32_t j = 0; j < s_; ++j) sorted_groups[j] += j;
    return rank_k_subset(sorted_groups, groups_ + s_ - 1);
  }

  /// Owners of every tuple whose multiset supports an edge between groups
  /// ga and gb (duplicates removed).
  std::vector<Vertex> edge_owners(std::uint32_t ga, std::uint32_t gb) const {
    if (ga > gb) std::swap(ga, gb);
    std::set<Vertex> owners;
    // Complete {ga, gb} with any multiset of size s-2 over [groups).
    std::vector<std::uint32_t> rest(s_ - 2, 0);
    const auto emit = [&] {
      std::vector<std::uint32_t> tuple = rest;
      tuple.push_back(ga);
      tuple.push_back(gb);
      std::sort(tuple.begin(), tuple.end());
      owners.insert(owner_of(tuple_rank(std::move(tuple))));
    };
    if (s_ == 2) {
      emit();
    } else {
      for (;;) {  // non-decreasing sequences of length s-2
        emit();
        std::int64_t j = static_cast<std::int64_t>(rest.size()) - 1;
        while (j >= 0 && rest[static_cast<std::size_t>(j)] == groups_ - 1)
          --j;
        if (j < 0) break;
        const auto jj = static_cast<std::size_t>(j);
        ++rest[jj];
        for (auto t = jj + 1; t < rest.size(); ++t) rest[t] = rest[jj];
      }
    }
    return {owners.begin(), owners.end()};
  }

 private:
  std::uint32_t n_, s_, groups_;
  std::uint64_t num_tuples_;
};

/// Local edge store at an owner.
class LocalGraph {
 public:
  void add(Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    if (!edges_.insert((static_cast<std::uint64_t>(a) << 32) | b).second)
      return;
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  bool has(Vertex a, Vertex b) const {
    if (a > b) std::swap(a, b);
    return edges_.count((static_cast<std::uint64_t>(a) << 32) | b) != 0;
  }
  std::vector<Vertex> support() const {
    std::vector<Vertex> out;
    out.reserve(adj_.size());
    for (const auto& [v, _] : adj_) out.push_back(v);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_set<std::uint64_t> edges_;
  std::unordered_map<Vertex, std::vector<Vertex>> adj_;
};

void enumerate_tuple(const ListingPlan& plan, const LocalGraph& graph,
                     const std::vector<Vertex>& support,
                     const std::vector<std::uint32_t>& tuple,
                     std::vector<Vertex>& chosen,
                     std::vector<std::vector<Vertex>>* sink) {
  const std::size_t slot = chosen.size();
  if (slot == tuple.size()) {
    sink->push_back(chosen);
    return;
  }
  for (const Vertex cand : support) {
    if (plan.group_of(cand) != tuple[slot]) continue;
    // Canonical order inside equal groups avoids duplicate listings.
    if (slot > 0 && tuple[slot] == tuple[slot - 1] && cand <= chosen.back())
      continue;
    bool adjacent_to_all = true;
    for (const Vertex prev : chosen)
      adjacent_to_all &= graph.has(prev, cand);
    if (!adjacent_to_all) continue;
    chosen.push_back(cand);
    enumerate_tuple(plan, graph, support, tuple, chosen, sink);
    chosen.pop_back();
  }
}

/// The edge records to route: each edge goes (from its lower endpoint) to
/// every owner whose tuple multiset supports its group pair.
congest::CliqueRouteRequest build_request(const Graph& input,
                                          const ListingPlan& plan,
                                          std::uint64_t bandwidth) {
  const Vertex n = input.num_vertices();
  const unsigned id_bits = wire::bits_for(n);
  congest::CliqueRouteRequest request;
  request.num_nodes = n;
  request.payload_bits = 2 * id_bits;
  request.bandwidth = bandwidth;
  for (const auto& [u, v] : input.edges()) {
    wire::Writer w;
    w.u(u, id_bits);
    w.u(v, id_bits);
    const BitVec payload = std::move(w).take();
    for (const Vertex owner :
         plan.edge_owners(plan.group_of(u), plan.group_of(v)))
      request.messages.push_back({u, owner, payload});
  }
  return request;
}

}  // namespace

std::vector<std::vector<Vertex>> CliqueListingResult::all_sorted() const {
  std::vector<std::vector<Vertex>> out;
  for (const auto& per_node : cliques_by_node)
    for (auto clique : per_node) {
      std::sort(clique.begin(), clique.end());
      out.push_back(std::move(clique));
    }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint32_t clique_listing_groups(std::uint64_t n, std::uint32_t s) {
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, ceil_kth_root(n, s)));
}

std::uint64_t clique_listing_round_budget(const Graph& input,
                                          std::uint32_t s) {
  const ListingPlan plan(input.num_vertices(), s);
  return congest::clique_route_round_budget(
      build_request(input, plan, /*bandwidth=*/0));
}

std::uint64_t clique_listing_min_bandwidth(std::uint64_t n) {
  return congest::clique_route_min_bandwidth(n, 2 * wire::bits_for(n));
}

congest::RunOutcome list_cliques_congested_clique(const Graph& input,
                                                  std::uint32_t s,
                                                  std::uint64_t bandwidth,
                                                  CliqueListingResult* result) {
  CSD_CHECK(result != nullptr);
  const Vertex n = input.num_vertices();
  CSD_CHECK_MSG(n >= 2, "congested clique needs >= 2 nodes");
  const ListingPlan plan(n, s);
  const unsigned id_bits = wire::bits_for(n);

  // Phase 1 (all communication): route every edge record to its owners.
  const auto routed =
      congest::route_in_clique(build_request(input, plan, bandwidth));

  // Phase 2 (local computation, free in the model): each owner rebuilds its
  // slice of the graph and enumerates the cliques of its tuples.
  result->cliques_by_node.assign(n, {});
  for (Vertex v = 0; v < n; ++v) {
    LocalGraph local;
    for (const auto& payload : routed.delivered[v]) {
      wire::Reader r(payload);
      const auto a = static_cast<Vertex>(r.u(id_bits));
      const auto b = static_cast<Vertex>(r.u(id_bits));
      local.add(a, b);
    }
    const auto support = local.support();
    for (std::uint64_t rank = v; rank < plan.num_tuples(); rank += n) {
      const auto tuple = plan.tuple_groups(rank);
      std::vector<Vertex> chosen;
      enumerate_tuple(plan, local, support, tuple, chosen,
                      &result->cliques_by_node[v]);
    }
  }

  congest::RunOutcome outcome;
  outcome.completed = true;
  outcome.metrics.rounds = routed.rounds;
  outcome.metrics.total_bits = routed.total_bits;
  outcome.verdicts.assign(n, congest::Verdict::Accept);
  for (Vertex v = 0; v < n; ++v)
    if (!result->cliques_by_node[v].empty()) {
      outcome.verdicts[v] = congest::Verdict::Reject;
      outcome.detected = true;
    }
  return outcome;
}

}  // namespace csd::detect
