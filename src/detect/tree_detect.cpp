#include "detect/tree_detect.hpp"

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

struct RootedTree {
  std::uint32_t k = 0;
  std::uint32_t height = 0;                     // max depth
  std::vector<std::uint32_t> depth;             // per H-vertex
  std::vector<std::vector<Vertex>> children;    // rooted at 0
};

RootedTree root_tree(const Graph& tree) {
  CSD_CHECK_MSG(tree.num_vertices() >= 1 &&
                    tree.num_edges() + 1 == tree.num_vertices() &&
                    is_connected(tree),
                "pattern must be a tree");
  RootedTree rt;
  rt.k = tree.num_vertices();
  rt.depth = bfs_distances(tree, 0);
  rt.children.resize(rt.k);
  for (Vertex h = 0; h < rt.k; ++h) {
    rt.height = std::max(rt.height, rt.depth[h]);
    for (const Vertex c : tree.neighbors(h))
      if (rt.depth[c] == rt.depth[h] + 1) rt.children[h].push_back(c);
  }
  return rt;
}

class TreeDetectProgram final : public congest::NodeProgram {
 public:
  explicit TreeDetectProgram(RootedTree rt) : rt_(std::move(rt)) {}

  void on_round(congest::NodeApi& api) override {
    CSD_CHECK_MSG(api.bandwidth() == 0 || api.bandwidth() >= rt_.k,
                  "bandwidth too small for the subtree bitmap");
    api.phase(api.round() == 0         ? "color"
              : api.round() <= rt_.height ? "dp-wave"
                                          : "decide");
    if (api.round() == 0) {
      color_ = static_cast<std::uint32_t>(api.rng().below(rt_.k));
      can_root_.assign(rt_.k, false);
    } else {
      // Union of neighbor bitmaps from the previous round.
      neighbor_any_.assign(rt_.k, false);
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        for (std::uint32_t h = 0; h < rt_.k; ++h)
          if (msg->get(h)) neighbor_any_[h] = true;
      }
    }

    // Round t computes H-vertices at depth height - t. Kept 64-bit: a
    // truncated round counter would alias round 2^32 + r onto round r.
    const std::uint64_t t = api.round();
    if (t <= rt_.height) {
      const auto level = static_cast<std::uint32_t>(rt_.height - t);
      for (std::uint32_t h = 0; h < rt_.k; ++h) {
        if (rt_.depth[h] != level || color_ != h) continue;
        bool ok = true;
        for (const Vertex child : rt_.children[h])
          ok &= t > 0 && neighbor_any_[child];
        // Depth-(height) vertices have no children, so ok stays true.
        can_root_[h] = ok;
      }
      BitVec bitmap(rt_.k);
      for (std::uint32_t h = 0; h < rt_.k; ++h)
        if (can_root_[h]) bitmap.set(h);
      api.broadcast(bitmap);
      return;
    }

    // One extra round so the root-level computation of other nodes settles;
    // then decide and halt.
    if (can_root_[0]) api.reject();
    api.halt();
  }

 private:
  RootedTree rt_;
  std::uint32_t color_ = 0;
  std::vector<bool> can_root_;
  std::vector<bool> neighbor_any_;
};

}  // namespace

congest::ProgramFactory tree_detect_program(const Graph& tree) {
  const RootedTree rt = root_tree(tree);
  return [rt](std::uint32_t) {
    return std::make_unique<TreeDetectProgram>(rt);
  };
}

std::uint64_t tree_detect_round_budget(const Graph& tree) {
  return root_tree(tree).height + 2;
}

std::uint64_t tree_detect_min_bandwidth(const Graph& tree) {
  return tree.num_vertices();
}

congest::RunOutcome detect_tree(const Graph& g, const TreeDetectConfig& cfg,
                                std::uint64_t bandwidth, std::uint64_t seed) {
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = bandwidth;
  net_cfg.seed = seed;
  net_cfg.trace = cfg.trace;
  net_cfg.shard = cfg.shard;
  net_cfg.telemetry = cfg.telemetry;
  net_cfg.max_rounds = tree_detect_round_budget(cfg.tree) + 1;
  return congest::run_amplified(g, net_cfg, tree_detect_program(cfg.tree),
                                cfg.repetitions, cfg.amplify);
}

}  // namespace csd::detect
