#include "detect/triangle.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

class IdExchangeProgram final : public congest::NodeProgram {
 public:
  /// digest = false: compare low id bits; true: compare salted hashes.
  explicit IdExchangeProgram(std::uint32_t c_bits, bool digest = false,
                             std::uint64_t salt = 0)
      : c_bits_(c_bits), digest_(digest), salt_(salt) {}

  void on_round(congest::NodeApi& api) override {
    CSD_CHECK_MSG(api.degree() == 2,
                  "id-exchange distinguisher needs a 2-regular topology");
    CSD_CHECK_MSG(api.bandwidth() == 0 || api.bandwidth() >= c_bits_,
                  "bandwidth too small for id exchange");
    const std::uint64_t mask =
        c_bits_ >= 64 ? ~0ULL : (1ULL << c_bits_) - 1;
    const auto fingerprint = [&](std::uint64_t id) {
      if (!digest_) return id & mask;
      std::uint64_t s = id ^ (salt_ * 0x9e3779b97f4a7c15ULL);
      return splitmix64(s) & mask;
    };

    switch (api.round()) {
      case 0: {
        api.phase("announce");
        wire::Writer w;
        w.u(fingerprint(api.id()), c_bits_);
        api.broadcast(std::move(w).take());
        break;
      }
      case 1: {
        api.phase("cross-forward");
        // Cross-forward: what arrived on port p leaves on port 1-p.
        for (std::uint32_t p = 0; p < 2; ++p) {
          const auto* msg = api.inbox(p);
          CSD_CHECK_MSG(msg != nullptr, "missing id announcement");
          wire::Reader r(*msg);
          heard_[p] = r.u(c_bits_);
          wire::Writer w;
          w.u(heard_[p], c_bits_);
          api.send(1 - p, std::move(w).take());
        }
        break;
      }
      case 2: {
        api.phase("decide");
        // In a triangle, my neighbor's other neighbor is my other neighbor.
        bool both_match = true;
        for (std::uint32_t p = 0; p < 2; ++p) {
          const auto* msg = api.inbox(p);
          CSD_CHECK_MSG(msg != nullptr, "missing forwarded id");
          wire::Reader r(*msg);
          const std::uint64_t reported = r.u(c_bits_);
          both_match &= reported == fingerprint(api.neighbor_id(1 - p));
        }
        if (both_match) api.reject();
        api.halt();
        break;
      }
      default:
        CSD_CHECK(false);
    }
  }

 private:
  std::uint32_t c_bits_;
  bool digest_;
  std::uint64_t salt_;
  std::uint64_t heard_[2] = {0, 0};
};

}  // namespace

congest::ProgramFactory id_exchange_triangle_program(std::uint32_t c_bits) {
  CSD_CHECK_MSG(c_bits >= 1 && c_bits <= 64, "c_bits out of range");
  return [c_bits](std::uint32_t) {
    return std::make_unique<IdExchangeProgram>(c_bits);
  };
}

congest::ProgramFactory hashed_id_exchange_triangle_program(
    std::uint32_t c_bits, std::uint64_t salt) {
  CSD_CHECK_MSG(c_bits >= 1 && c_bits <= 64, "c_bits out of range");
  return [c_bits, salt](std::uint32_t) {
    return std::make_unique<IdExchangeProgram>(c_bits, /*digest=*/true, salt);
  };
}

std::uint32_t id_exchange_sound_bits(std::uint64_t namespace_size) {
  return wire::bits_for(namespace_size);
}

}  // namespace csd::detect
