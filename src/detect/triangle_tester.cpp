#include "detect/triangle_tester.hpp"

#include <optional>
#include <vector>

#include "detect/id_set.hpp"
#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

/// Per-port wire format: [has_reply][reply][has_query][query id?].
class TriangleTesterProgram final : public congest::NodeProgram {
 public:
  explicit TriangleTesterProgram(const TriangleTesterConfig& cfg)
      : cfg_(cfg) {}

  void on_round(congest::NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.namespace_size());
    if (api.round() == 0) {
      CSD_CHECK_MSG(api.bandwidth() == 0 ||
                        api.bandwidth() >=
                            triangle_tester_min_bandwidth(api.namespace_size()),
                    "bandwidth too small for the triangle tester");
      // O(1) query answering: dense bit-set over the id namespace (falls
      // back to a hash set for very large namespaces).
      neighbors_.init(api.namespace_size());
      for (std::uint32_t p = 0; p < api.degree(); ++p)
        neighbors_.insert(api.neighbor_id(p));
    }

    // Absorb: replies answer our query from two rounds ago; queries arriving
    // now get a reply attached to next round's outgoing message.
    std::vector<std::optional<bool>> replies(api.degree());
    if (api.round() > 0) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader r(*msg);
        const bool has_reply = r.boolean();
        const bool confirmed = r.boolean();
        if (has_reply && confirmed)
          api.reject();  // u confirmed u ~ w: triangle v,u,w closed
        if (r.boolean()) {  // has_query
          const std::uint64_t queried = r.u(id_bits);
          replies[p] = neighbors_.contains(queried);
        }
      }
    }

    const bool querying =
        api.round() < cfg_.query_rounds && api.degree() >= 2;
    std::uint32_t query_port = 0;
    std::uint64_t query_id = 0;
    if (querying) {
      // Two distinct random ports: ask `query_port` about the other's id.
      query_port = static_cast<std::uint32_t>(api.rng().below(api.degree()));
      auto other = static_cast<std::uint32_t>(api.rng().below(api.degree() - 1));
      if (other >= query_port) ++other;
      query_id = api.neighbor_id(other);
    }

    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      const bool send_query = querying && p == query_port;
      if (!replies[p].has_value() && !send_query) continue;
      wire::Writer w;
      w.boolean(replies[p].has_value());
      w.boolean(replies[p].value_or(false));
      w.boolean(send_query);
      if (send_query) w.u(query_id, id_bits);
      api.send(p, std::move(w).take());
    }

    if (api.round() >= triangle_tester_round_budget(cfg_) - 1) api.halt();
  }

 private:
  TriangleTesterConfig cfg_;
  IdSet neighbors_;
};

}  // namespace

congest::ProgramFactory triangle_tester_program(
    const TriangleTesterConfig& cfg) {
  CSD_CHECK_MSG(cfg.query_rounds >= 1, "need at least one query round");
  return [cfg](std::uint32_t) {
    return std::make_unique<TriangleTesterProgram>(cfg);
  };
}

std::uint64_t triangle_tester_round_budget(const TriangleTesterConfig& cfg) {
  return cfg.query_rounds + 2;
}

std::uint64_t triangle_tester_min_bandwidth(std::uint64_t namespace_size) {
  return wire::bits_for(namespace_size) + 3;
}

congest::RunOutcome test_triangle_freeness(const Graph& g,
                                           const TriangleTesterConfig& cfg,
                                           std::uint64_t bandwidth,
                                           std::uint64_t seed) {
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = bandwidth;
  net_cfg.seed = seed;
  net_cfg.max_rounds = triangle_tester_round_budget(cfg) + 1;
  return congest::run_congest(g, net_cfg, triangle_tester_program(cfg));
}

}  // namespace csd::detect
