// Membership set over a bounded integer id namespace.
//
// The detection programs deduplicate node-id tokens against sets whose
// universe is the id namespace of the run. For the instance sizes the
// simulator targets, a dense bit-vector (one word per 64 ids) beats a hash
// set on both speed and memory, and its intersection is word-parallel; for
// very large namespaces the helper falls back to std::unordered_set so the
// programs stay correct at any scale.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "support/bitvec.hpp"
#include "support/check.hpp"

namespace csd::detect {

class IdSet {
 public:
  /// Universe sizes up to this use the dense representation (16 KiB of bits).
  static constexpr std::uint64_t kDenseLimit = 1ULL << 17;

  IdSet() = default;

  /// Fix the id universe [0, universe). Must be called before any insert.
  void init(std::uint64_t universe) {
    universe_ = universe;
    dense_mode_ = universe > 0 && universe <= kDenseLimit;
    if (dense_mode_) dense_ = BitVec(static_cast<std::size_t>(universe));
  }

  /// Insert `id`; returns true iff it was not already present.
  bool insert(std::uint64_t id) {
    if (dense_mode_) {
      CSD_DCHECK(id < universe_);
      const auto i = static_cast<std::size_t>(id);
      if (dense_.get(i)) return false;
      dense_.set(i);
      return true;
    }
    return sparse_.insert(id).second;
  }

  bool contains(std::uint64_t id) const {
    if (dense_mode_)
      return id < universe_ && dense_.get(static_cast<std::size_t>(id));
    return sparse_.count(id) != 0;
  }

  void clear() {
    if (dense_mode_)
      dense_ = BitVec(static_cast<std::size_t>(universe_));
    else
      sparse_.clear();
  }

  /// True iff the two sets share an element. Word-parallel when both sides
  /// are dense over the same universe.
  friend bool intersects(const IdSet& a, const IdSet& b) {
    if (a.dense_mode_ && b.dense_mode_ && a.universe_ == b.universe_)
      return intersect_count(a.dense_, b.dense_) > 0;
    const IdSet& probe = a.size_hint() <= b.size_hint() ? a : b;
    const IdSet& other = (&probe == &a) ? b : a;
    if (probe.dense_mode_) {
      for (std::size_t i = probe.dense_.find_next(0); i < probe.dense_.size();
           i = probe.dense_.find_next(i + 1))
        if (other.contains(i)) return true;
      return false;
    }
    for (const auto id : probe.sparse_)
      if (other.contains(id)) return true;
    return false;
  }

 private:
  std::size_t size_hint() const {
    return dense_mode_ ? dense_.count() : sparse_.size();
  }

  std::uint64_t universe_ = 0;
  bool dense_mode_ = false;
  BitVec dense_;
  std::unordered_set<std::uint64_t> sparse_;
};

}  // namespace csd::detect
