#include "detect/pipelined_cycle.hpp"

#include <deque>
#include <unordered_set>

#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

/// Token = (origin id, hop count); fixed-width encoding.
class PipelinedCycleProgram final : public congest::NodeProgram {
 public:
  explicit PipelinedCycleProgram(std::uint32_t length) : length_(length) {}

  void on_round(congest::NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.namespace_size());
    const unsigned hop_bits = wire::bits_for(length_);

    api.phase(api.round() == 0 ? "color" : "pipeline");
    if (api.round() == 0) {
      CSD_CHECK_MSG(api.bandwidth() == 0 ||
                        api.bandwidth() >= id_bits + hop_bits,
                    "bandwidth too small for pipelined cycle detection");
      color_ = static_cast<std::uint32_t>(api.rng().below(length_));
      budget_ = pipelined_cycle_round_budget(api.network_size(), length_);
      if (color_ == 0 && api.degree() > 0) queue_.push_back(api.id());
    } else {
      // Process tokens delivered this round.
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader reader(*msg);
        const congest::NodeId origin = reader.u(id_bits);
        const auto hop = static_cast<std::uint32_t>(reader.u(hop_bits));
        if (origin == api.id() && hop == length_ - 1) {
          api.reject();  // own token came back: properly-colored L-cycle
          continue;
        }
        if (color_ != hop + 1) continue;       // color filter
        if (!seen_.insert(origin).second) continue;  // dedup per origin
        queue_.push_back(origin);
      }
    }

    // Forward one queued token per round (pipelining). Tokens re-broadcast
    // by the queueing node carry hop = its own color; the origin's initial
    // token carries hop 0 = its color.
    if (!queue_.empty()) {
      const congest::NodeId origin = queue_.front();
      queue_.pop_front();
      wire::Writer w(api.scratch());
      w.u(origin, id_bits);
      w.u(color_, hop_bits);
      api.broadcast(std::move(w).take());
    }

    if (api.round() + 1 >= budget_) {
      // A non-empty queue here cannot happen: every node forwards at most
      // one token per distinct origin, so queues drain within n + L rounds.
      CSD_CHECK_MSG(queue_.empty(), "pipelined cycle queue failed to drain");
      api.halt();
    }
  }

 private:
  std::uint32_t length_;
  std::uint32_t color_ = 0;
  std::uint64_t budget_ = 0;
  std::deque<congest::NodeId> queue_;
  std::unordered_set<congest::NodeId> seen_;
};

}  // namespace

congest::ProgramFactory pipelined_cycle_program(std::uint32_t length) {
  CSD_CHECK_MSG(length >= 3, "cycle length must be >= 3");
  return [length](std::uint32_t) {
    return std::make_unique<PipelinedCycleProgram>(length);
  };
}

std::uint64_t pipelined_cycle_round_budget(std::uint64_t n,
                                           std::uint32_t length) {
  return n + length + 1;
}

std::uint64_t pipelined_cycle_min_bandwidth(std::uint64_t n,
                                            std::uint32_t length) {
  return wire::bits_for(n) + wire::bits_for(length);
}

congest::RunOutcome detect_cycle_pipelined(const Graph& g,
                                           const PipelinedCycleConfig& cfg,
                                           std::uint64_t bandwidth,
                                           std::uint64_t seed) {
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = bandwidth;
  net_cfg.seed = seed;
  net_cfg.trace = cfg.trace;
  net_cfg.shard = cfg.shard;
  net_cfg.telemetry = cfg.telemetry;
  net_cfg.max_rounds =
      pipelined_cycle_round_budget(g.num_vertices(), cfg.length) + 1;
  return congest::run_amplified(g, net_cfg,
                                pipelined_cycle_program(cfg.length),
                                cfg.repetitions, cfg.amplify);
}

}  // namespace csd::detect
