// Universal detection algorithms based on topology collection.
//
// Two flavors:
//
//   * CONGEST edge gossip (`collect_and_check_program`): every node floods
//     every edge it learns, one edge per round per node (pipelined); after a
//     caller-chosen budget every node knows the whole graph and evaluates a
//     predicate on it. O(m + D) rounds with Θ(log n)-bit messages — the
//     generic "collect everything" upper bound the paper's superlinear lower
//     bound (Thm 1.2) is contrasted against, and the algorithm simulated in
//     our executable reduction.
//
//   * LOCAL ball collection (`local_ball_program`): every node rebroadcasts
//     its known edge set each round with unbounded messages; after r rounds
//     it knows its radius-r ball and checks the pattern locally. This is the
//     O(k)-round LOCAL algorithm from §1, exhibiting the CONGEST/LOCAL
//     separation.
#pragma once

#include <cstdint>
#include <functional>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

/// Decides on the collected topology (vertices indexed by node identifier;
/// identifiers must lie in [0, network size)). Returns true to reject,
/// i.e. "the pattern is present".
using CollectedChecker = std::function<bool(const Graph& collected)>;

/// CONGEST edge-gossip collection. All nodes evaluate `checker` when the
/// budget expires; any node whose queue has not drained also rejects
/// (mirroring the §6 queue-deadline convention). The checker runs on the
/// final round only.
congest::ProgramFactory collect_and_check_program(std::uint64_t round_budget,
                                                  CollectedChecker checker);

/// Round budget sufficient for edge gossip on a graph with m edges and n
/// vertices: every node forwards each edge at most once.
std::uint64_t collect_round_budget(std::uint64_t n, std::uint64_t m);

/// Bits needed per gossip message.
std::uint64_t collect_min_bandwidth(std::uint64_t n);

/// LOCAL-model ball collection to the given radius (requires unbounded
/// bandwidth, config.bandwidth == 0). The checker sees the radius-r ball of
/// each node (as a graph on all n identifiers, absent edges simply missing).
congest::ProgramFactory local_ball_program(std::uint32_t radius,
                                           CollectedChecker checker);

/// Convenience: run CONGEST collect-and-check end to end.
congest::RunOutcome detect_by_collection(const Graph& g,
                                         const CollectedChecker& checker,
                                         std::uint64_t bandwidth,
                                         std::uint64_t seed);

/// The §1 LOCAL-model algorithm for arbitrary fixed H: every node collects
/// its radius-|V(H)| ball (unbounded messages) and searches it for H with
/// the VF2 oracle. O(|V(H)|) rounds regardless of n — the benchmark the
/// CONGEST lower bounds are separated from. Deterministic and exact.
congest::RunOutcome detect_subgraph_local(const Graph& g,
                                          const Graph& pattern);

}  // namespace csd::detect
