#include "detect/collect.hpp"

#include <deque>
#include <set>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::detect {

namespace {

using IdEdge = std::pair<congest::NodeId, congest::NodeId>;

IdEdge make_id_edge(congest::NodeId a, congest::NodeId b) {
  return a < b ? IdEdge{a, b} : IdEdge{b, a};
}

/// Rebuilds a Graph over the identifier space [0, n) from an edge set.
Graph graph_from_id_edges(std::uint64_t n, const std::set<IdEdge>& edges) {
  Graph g(static_cast<Vertex>(n));
  for (const auto& [a, b] : edges) {
    CSD_CHECK_MSG(a < n && b < n,
                  "collected identifier outside the namespace");
    g.add_edge_if_absent(static_cast<Vertex>(a), static_cast<Vertex>(b));
  }
  return g;
}

class CollectAndCheckProgram final : public congest::NodeProgram {
 public:
  CollectAndCheckProgram(std::uint64_t budget, CollectedChecker checker)
      : budget_(budget), checker_(std::move(checker)) {}

  void on_round(congest::NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.namespace_size());
    if (api.round() == 0) {
      CSD_CHECK_MSG(api.bandwidth() == 0 || api.bandwidth() >= 2 * id_bits,
                    "bandwidth too small for edge gossip");
      for (std::uint32_t p = 0; p < api.degree(); ++p)
        learn(make_id_edge(api.id(), api.neighbor_id(p)));
    } else {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader r(*msg);
        const congest::NodeId a = r.u(id_bits);
        const congest::NodeId b = r.u(id_bits);
        learn(make_id_edge(a, b));
      }
    }

    if (api.round() + 1 >= budget_) {
      // Budget chosen by the caller so that queues always drain; a busy
      // queue means the caller's budget was wrong for this graph.
      CSD_CHECK_MSG(queue_.empty(), "edge gossip queue failed to drain");
      if (checker_(graph_from_id_edges(api.namespace_size(), known_)))
        api.reject();
      api.halt();
      return;
    }

    if (!queue_.empty()) {
      const IdEdge e = queue_.front();
      queue_.pop_front();
      wire::Writer w;
      w.u(e.first, id_bits);
      w.u(e.second, id_bits);
      api.broadcast(std::move(w).take());
    }
  }

 private:
  void learn(const IdEdge& e) {
    if (known_.insert(e).second) queue_.push_back(e);
  }

  std::uint64_t budget_;
  CollectedChecker checker_;
  std::set<IdEdge> known_;
  std::deque<IdEdge> queue_;
};

class LocalBallProgram final : public congest::NodeProgram {
 public:
  LocalBallProgram(std::uint32_t radius, CollectedChecker checker)
      : radius_(radius), checker_(std::move(checker)) {}

  void on_round(congest::NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.namespace_size());
    CSD_CHECK_MSG(api.bandwidth() == 0,
                  "LOCAL ball collection needs unbounded bandwidth");
    if (api.round() == 0) {
      for (std::uint32_t p = 0; p < api.degree(); ++p)
        known_.insert(make_id_edge(api.id(), api.neighbor_id(p)));
    } else {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader r(*msg);
        const std::uint64_t count = r.varint();
        for (std::uint64_t i = 0; i < count; ++i) {
          const congest::NodeId a = r.u(id_bits);
          const congest::NodeId b = r.u(id_bits);
          known_.insert(make_id_edge(a, b));
        }
      }
    }

    // After absorbing in round t the node knows its radius-(t+1) ball, so
    // the radius-r ball is complete at the end of round r-1: r rounds total.
    if (api.round() + 1 >= radius_) {
      if (checker_(graph_from_id_edges(api.namespace_size(), known_)))
        api.reject();
      api.halt();
      return;
    }

    // Rebroadcast the full known edge set (LOCAL model: unbounded message).
    wire::Writer w;
    w.varint(known_.size());
    for (const auto& [a, b] : known_) {
      w.u(a, id_bits);
      w.u(b, id_bits);
    }
    api.broadcast(std::move(w).take());
  }

 private:
  std::uint32_t radius_;
  CollectedChecker checker_;
  std::set<IdEdge> known_;
};

}  // namespace

congest::ProgramFactory collect_and_check_program(std::uint64_t round_budget,
                                                  CollectedChecker checker) {
  return [round_budget, checker](std::uint32_t) {
    return std::make_unique<CollectAndCheckProgram>(round_budget, checker);
  };
}

std::uint64_t collect_round_budget(std::uint64_t n, std::uint64_t m) {
  return m + n + 2;
}

std::uint64_t collect_min_bandwidth(std::uint64_t n) {
  return 2 * wire::bits_for(n);
}

congest::ProgramFactory local_ball_program(std::uint32_t radius,
                                           CollectedChecker checker) {
  return [radius, checker](std::uint32_t) {
    return std::make_unique<LocalBallProgram>(radius, checker);
  };
}

congest::RunOutcome detect_subgraph_local(const Graph& g,
                                          const Graph& pattern) {
  // Radius |V(H)| suffices: any copy of a connected pattern lies within
  // distance |V(H)|-1 of each of its vertices; for disconnected patterns a
  // single ball need not see every component, so we require connectivity.
  CSD_CHECK_MSG(pattern.num_vertices() == 0 || is_connected(pattern),
                "LOCAL detection wrapper requires a connected pattern");
  const auto radius =
      std::max<std::uint32_t>(1, pattern.num_vertices());
  congest::NetworkConfig cfg;
  cfg.bandwidth = 0;  // LOCAL
  cfg.max_rounds = radius + 2;
  const Graph pattern_copy = pattern;
  return congest::run_congest(
      g, cfg, local_ball_program(radius, [pattern_copy](const Graph& ball) {
        return contains_subgraph(ball, pattern_copy);
      }));
}

congest::RunOutcome detect_by_collection(const Graph& g,
                                         const CollectedChecker& checker,
                                         std::uint64_t bandwidth,
                                         std::uint64_t seed) {
  congest::NetworkConfig cfg;
  cfg.bandwidth = bandwidth;
  cfg.seed = seed;
  const std::uint64_t budget =
      collect_round_budget(g.num_vertices(), g.num_edges());
  cfg.max_rounds = budget + 1;
  return congest::run_congest(g, cfg,
                              collect_and_check_program(budget, checker));
}

}  // namespace csd::detect
