// K_s detection in CONGEST via neighborhood exchange ([10]-style, cited by
// the paper as the O(n)-round upper bound for cliques).
//
// Every node announces its degree, then streams its sorted adjacency
// identifier list to all neighbors, B bits per round. Once a node has every
// neighbor's list it knows the full induced graph on its neighborhood and
// checks locally whether it closes a K_s (a K_{s-1} among its neighbors).
// Round complexity: O(Δ·log n / B + 1); each node halts as soon as it has
// sent and received everything, so sparse graphs finish fast.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

/// Program factory for K_s detection (s >= 2). Deterministic.
congest::ProgramFactory clique_detect_program(std::uint32_t s);

/// Triangle detection is the s = 3 special case.
inline congest::ProgramFactory triangle_detect_program() {
  return clique_detect_program(3);
}

std::uint64_t clique_detect_min_bandwidth(std::uint64_t n);

/// Worst-case round budget on an n-node graph of max degree `max_degree`.
std::uint64_t clique_detect_round_budget(std::uint64_t n,
                                         std::uint64_t max_degree,
                                         std::uint64_t bandwidth);

/// End-to-end run. `trace` opts into the per-round recorder (obs/);
/// `shard` selects the sharded superstep engine (workers == 0 = classic;
/// the outcome is bit-identical either way); `telemetry` attaches the
/// optional csd-metrics-v2 plane (non-owning, write-only).
congest::RunOutcome detect_clique(const Graph& g, std::uint32_t s,
                                  std::uint64_t bandwidth, std::uint64_t seed,
                                  const obs::TraceOptions& trace = {},
                                  const congest::ShardSpec& shard = {},
                                  obs::Telemetry* telemetry = nullptr);

}  // namespace csd::detect
