// Constant-round tree detection via color coding (the paper cites [12] for
// a deterministic constant-round algorithm; we implement the classic
// randomized color-coding DP, amplified by repetitions).
//
// Fix a tree H on k vertices, rooted at vertex 0. Every network node draws
// a color in [k]; we look for a *colorful* copy in which the node playing
// H-vertex h has color h. Bottom-up DP over H's depth levels: node v learns
// whether it can root each H-subtree, one bitmap broadcast (k bits) per
// level. Round complexity: height(H) + 2 per repetition — O(1) for fixed H.
// Per-repetition success for an existing copy is at least k!/k^k >= e^{-k};
// rejection always certifies a real copy.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::detect {

struct TreeDetectConfig {
  /// The pattern; must be a tree (checked). Rooted at vertex 0.
  Graph tree;
  std::uint32_t repetitions = 1;
  /// How repetitions are driven: worker threads + early exit after the
  /// first rejecting repetition. Results are jobs-count independent.
  congest::AmplifyOptions amplify;
  /// Per-round observability for every repetition's run.
  obs::TraceOptions trace;
  /// Sharded superstep execution of each repetition (congest/shard.hpp);
  /// workers == 0 keeps the classic engine. Bit-identical either way.
  congest::ShardSpec shard;
  /// Optional csd-metrics-v2 plane, forwarded to every repetition's engine
  /// (non-owning, write-only; nullptr = zero cost).
  obs::Telemetry* telemetry = nullptr;
};

congest::ProgramFactory tree_detect_program(const Graph& tree);

/// Rounds one repetition takes for this tree.
std::uint64_t tree_detect_round_budget(const Graph& tree);

/// Bits per message (the subtree bitmap).
std::uint64_t tree_detect_min_bandwidth(const Graph& tree);

congest::RunOutcome detect_tree(const Graph& g, const TreeDetectConfig& cfg,
                                std::uint64_t bandwidth, std::uint64_t seed);

}  // namespace csd::detect
