#include "obs/lb_fit.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::obs {

namespace {

/// Mean of a block in index order (the canonical fold order: block contents
/// are per-seed rows in seed order, and the bootstrap reproduces the same
/// order, so sums are bit-stable).
double mean_of(const std::vector<double>& ys) {
  double sum = 0.0;
  for (const double y : ys) sum += y;
  return sum / static_cast<double>(ys.size());
}

/// Fit through (x, mean) pairs, dropping non-positive means; counts drops.
std::optional<PowerLawFit> fit_means(const std::vector<double>& xs,
                                     const std::vector<double>& means,
                                     std::uint64_t* dropped) {
  std::vector<std::pair<double, double>> xy;
  xy.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (means[i] > 0.0) {
      xy.emplace_back(xs[i], means[i]);
    } else if (dropped != nullptr) {
      ++*dropped;
    }
  }
  return fit_power_law(xy);
}

}  // namespace

std::optional<BootstrapFit> bootstrap_power_law_blocks(
    const std::vector<double>& xs,
    const std::vector<std::vector<double>>& ys_per_x,
    std::uint32_t resamples, std::uint64_t seed, double confidence) {
  CSD_CHECK(xs.size() == ys_per_x.size());
  CSD_CHECK(confidence > 0.0 && confidence < 1.0);
  for (const auto& block : ys_per_x) CSD_CHECK(!block.empty());

  BootstrapFit out;
  out.confidence = confidence;
  out.resamples = resamples;

  std::vector<double> means(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) means[i] = mean_of(ys_per_x[i]);
  const auto point = fit_means(xs, means, &out.dropped_points);
  if (!point.has_value()) return std::nullopt;
  out.fit = *point;

  if (resamples == 0) {
    out.exponent_lo = out.exponent_hi = out.fit.exponent;
    return out;
  }

  Rng rng(derive_seed(seed, 0xb007));
  std::vector<double> exponents;
  exponents.reserve(resamples);
  std::vector<double> resampled(xs.size());
  for (std::uint32_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto& block = ys_per_x[i];
      double sum = 0.0;
      for (std::size_t k = 0; k < block.size(); ++k)
        sum += block[rng.below(block.size())];
      resampled[i] = sum / static_cast<double>(block.size());
    }
    const auto refit = fit_means(xs, resampled, &out.dropped_points);
    if (refit.has_value())
      exponents.push_back(refit->exponent);
    else
      ++out.degenerate_resamples;
  }

  if (exponents.empty()) {
    // Every resample degenerated (tiny blocks of sign-flipping values):
    // report the widest honest interval around the point fit.
    out.exponent_lo = out.exponent_hi = out.fit.exponent;
    return out;
  }
  std::sort(exponents.begin(), exponents.end());
  const double alpha = 1.0 - confidence;
  const auto rank = [&](double q) {
    const double pos = q * static_cast<double>(exponents.size() - 1);
    return exponents[static_cast<std::size_t>(pos + 0.5)];
  };
  out.exponent_lo = rank(alpha / 2.0);
  out.exponent_hi = rank(1.0 - alpha / 2.0);
  return out;
}

std::optional<BootstrapFit> bootstrap_power_law(
    const std::vector<std::pair<double, double>>& xy_per_seed,
    std::uint32_t resamples, std::uint64_t seed, double confidence) {
  // Group rows by bit-equal x; std::map iteration gives ascending-x blocks
  // regardless of row order.
  std::map<double, std::vector<double>> blocks;
  for (const auto& [x, y] : xy_per_seed) blocks[x].push_back(y);
  std::vector<double> xs;
  std::vector<std::vector<double>> ys;
  xs.reserve(blocks.size());
  ys.reserve(blocks.size());
  for (auto& [x, block] : blocks) {
    xs.push_back(x);
    ys.push_back(std::move(block));
  }
  return bootstrap_power_law_blocks(xs, ys, resamples, seed, confidence);
}

}  // namespace csd::obs
