#include "obs/metrics_series.hpp"

#include <algorithm>
#include <istream>

#include "obs/json.hpp"
#include "support/check.hpp"

namespace csd::obs {

std::uint64_t MetricsSample::counter(const std::string& name) const {
  for (const auto& [key, value] : counters)
    if (key == name) return value;
  return 0;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> MetricsSample::gauge(
    const std::string& name) const {
  for (const auto& [key, value] : gauges)
    if (key == name) return value;
  return std::nullopt;
}

std::uint64_t MetricsSeries::span_ms() const {
  if (samples.size() < 2) return 0;
  return samples.back().epoch_ms - samples.front().epoch_ms;
}

std::optional<double> MetricsSeries::rate_per_sec(
    const std::string& name) const {
  const std::uint64_t ms = span_ms();
  if (ms == 0) return std::nullopt;
  const std::uint64_t d = delta(name);
  return static_cast<double>(d) * 1000.0 / static_cast<double>(ms);
}

std::uint64_t MetricsSeries::delta(const std::string& name) const {
  if (samples.empty()) return 0;
  const std::uint64_t last = samples.back().counter(name);
  const std::uint64_t first = samples.front().counter(name);
  return last >= first ? last - first : 0;
}

std::vector<const MetricsSample*> MetricsSeries::tail(double seconds) const {
  std::vector<const MetricsSample*> out;
  if (samples.empty()) return out;
  const std::uint64_t end = samples.back().epoch_ms;
  const auto window_ms = static_cast<std::uint64_t>(seconds * 1000.0);
  const std::uint64_t cutoff = end > window_ms ? end - window_ms : 0;
  for (const MetricsSample& sample : samples)
    if (sample.epoch_ms >= cutoff) out.push_back(&sample);
  if (out.empty()) out.push_back(&samples.back());
  return out;
}

std::optional<std::uint64_t> histogram_percentile(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& buckets,
    double p) {
  std::uint64_t total = 0;
  for (const auto& [bucket, count] : buckets) total += count;
  if (total == 0) return std::nullopt;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(total);
  std::uint64_t running = 0;
  for (const auto& [bucket, count] : buckets) {
    running += count;
    if (static_cast<double>(running) >= target) {
      if (bucket == 0) return 0;
      // Exclusive upper bound of bucket i is 2^i; saturate at bucket 64.
      return bucket >= 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << bucket);
    }
  }
  const std::uint64_t last = buckets.back().first;
  return last == 0 ? 0
         : last >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << last);
}

MetricsSeries parse_metrics_series(std::istream& is) {
  MetricsSeries series;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const Json doc = Json::parse(line);
    CSD_CHECK_MSG(doc.at("schema").as_string() == "csd-metrics-v2",
                  "metric series line " << line_no << ": unexpected schema '"
                                        << doc.at("schema").as_string()
                                        << "'");
    MetricsSample sample;
    sample.sample = doc.at("sample").as_uint();
    sample.epoch_ms = doc.at("epoch_ms").as_uint();
    sample.events_recorded = doc.at("events_recorded").as_uint();
    for (const auto& [name, value] : doc.at("counters").members())
      sample.counters.emplace_back(name, value.as_uint());
    for (const auto& [name, value] : doc.at("gauges").members())
      sample.gauges.emplace_back(
          name, std::make_pair(value.at("value").as_uint(),
                               value.at("high_water").as_uint()));
    for (const auto& [name, value] : doc.at("histograms").members()) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
      for (const Json& pair : value.items()) {
        CSD_CHECK_MSG(pair.items().size() == 2,
                      "metric series line " << line_no
                                            << ": malformed histogram pair");
        buckets.emplace_back(pair.items()[0].as_uint(),
                             pair.items()[1].as_uint());
      }
      sample.histograms.emplace_back(name, std::move(buckets));
    }
    series.samples.push_back(std::move(sample));
  }
  return series;
}

}  // namespace csd::obs
