// Trace-analysis toolchain: parse csd-trace JSONL back into structured
// instances, fit the rounds-vs-n growth exponent, and answer the congestion
// questions the paper's bounds are phrased in.
//
// The JSONL emitted by RunTrace::write_jsonl is the interchange format
// between the engines and every analysis surface (csd analyze, the Chrome
// trace exporter, tools/trace_report.py): one file may concatenate many
// instances (csd sweep --trace, bench --trace), each a header / rounds /
// edges / summary block stamped with meta parameters for demuxing.
//
// The headline check: Thm 1.1 gives C_{2k} detection in
// O(n^{1 - 1/(k(k-1))}) rounds, so on a log-log plot of per-repetition
// rounds against n the measured points must fall on a line of slope at
// most that exponent (0.5 for k = 2). fit_power_law is the least-squares
// slope of that plot; csd analyze and CI gate on it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csd::obs {

/// One parsed trace instance (header through summary).
struct TraceInstance {
  // Header.
  std::vector<std::pair<std::string, std::string>> meta;
  std::uint64_t nodes = 0;
  std::uint64_t declared_rounds = 0;
  std::uint64_t segments = 1;
  bool per_node = false;
  bool per_edge = false;
  std::vector<std::uint64_t> segment_starts;

  // Round lines (node_* arrays are not retained; the analyses here are
  // phase- and edge-centric).
  struct Round {
    std::uint64_t round = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::string phase;  // empty = unattributed
  };
  std::vector<Round> rounds;

  // Edge lines (per_edge traces only).
  struct Edge {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
  };
  std::vector<Edge> edges;

  // Summary.
  struct Phase {
    std::string name;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
  };
  std::vector<Phase> phases;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;

  /// Meta value for `key`, if stamped.
  std::optional<std::string> meta_value(std::string_view key) const;
  /// Meta value parsed as a number (the sink stamps values as strings).
  std::optional<double> meta_number(std::string_view key) const;
  /// Rounds per repetition: declared rounds / segments — the y of the
  /// growth fit (run_amplified concatenates one segment per repetition).
  double rounds_per_segment() const;
  /// Group label for fitting: meta "group", else meta "program", else "".
  std::string fit_group() const;
};

/// Parse a (possibly multi-instance) csd-trace JSONL stream. Accepts both
/// schema v1 and v2. Throws CheckFailure on malformed input.
std::vector<TraceInstance> parse_trace_jsonl(std::istream& is);

/// Least-squares fit of log(y) = exponent * log(x) + log_coeff over the
/// given (x, y) points; x and y must be positive. Returns nullopt with
/// fewer than two distinct x values (a slope needs two abscissae).
struct PowerLawFit {
  double exponent = 0.0;
  double log_coeff = 0.0;  // natural log of the leading constant
  std::size_t points = 0;
};
std::optional<PowerLawFit> fit_power_law(
    const std::vector<std::pair<double, double>>& xy);

/// (n, rounds-per-segment) points of the instances whose meta carries a
/// numeric "n", grouped by TraceInstance::fit_group().
std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
rounds_vs_n_points(const std::vector<TraceInstance>& instances);

/// Total bits crossing the cut {v < boundary} | {v >= boundary} in either
/// direction (per_edge traces; 0 otherwise). For the lower-bound graphs
/// G_{X,Y} with X on one side of the index split this is exactly the
/// communication the §3.4 argument bounds from below.
std::uint64_t cut_traffic_bits(const TraceInstance& instance,
                               std::uint64_t boundary);

/// The k directed edges carrying the most bits, ties broken by (src, dst).
std::vector<TraceInstance::Edge> top_edges_by_bits(
    const TraceInstance& instance, std::size_t k);

}  // namespace csd::obs
