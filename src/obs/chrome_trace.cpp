#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "obs/json.hpp"

namespace csd::obs {

namespace {

std::string instance_label(const TraceInstance& instance, std::size_t index) {
  if (instance.meta.empty()) return "instance " + std::to_string(index);
  std::string label;
  for (const auto& [key, value] : instance.meta) {
    if (!label.empty()) label += ' ';
    label += key;
    label += '=';
    label += value;
  }
  return label;
}

Json event_base(const char* name, const char* ph, std::size_t pid) {
  Json event = Json::object();
  event.set("name", name);
  event.set("ph", ph);
  event.set("pid", static_cast<std::uint64_t>(pid));
  event.set("tid", std::uint64_t{0});
  return event;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceInstance>& instances,
                        const ChromeTraceOptions& options) {
  Json events = Json::array();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const TraceInstance& instance = instances[i];

    Json name_meta = event_base("process_name", "M", i);
    Json name_args = Json::object();
    name_args.set("name", instance_label(instance, i));
    name_meta.set("args", std::move(name_args));
    events.push(std::move(name_meta));

    // Phase spans: maximal runs of rounds sharing a phase name, broken at
    // segment boundaries so repetitions of an amplified run stay distinct.
    const auto is_segment_start = [&](std::uint64_t round) {
      return std::find(instance.segment_starts.begin(),
                       instance.segment_starts.end(),
                       round) != instance.segment_starts.end();
    };
    std::size_t r = 0;
    while (r < instance.rounds.size()) {
      if (instance.rounds[r].phase.empty()) {
        ++r;
        continue;
      }
      const std::string& phase = instance.rounds[r].phase;
      std::size_t end = r + 1;
      std::uint64_t messages = instance.rounds[r].messages;
      std::uint64_t bits = instance.rounds[r].bits;
      while (end < instance.rounds.size() &&
             instance.rounds[end].phase == phase &&
             !is_segment_start(instance.rounds[end].round)) {
        messages += instance.rounds[end].messages;
        bits += instance.rounds[end].bits;
        ++end;
      }
      Json span = event_base(phase.c_str(), "X", i);
      span.set("ts", instance.rounds[r].round);
      span.set("dur", static_cast<std::uint64_t>(end - r));
      Json args = Json::object();
      args.set("rounds", static_cast<std::uint64_t>(end - r));
      args.set("messages", messages);
      args.set("bits", bits);
      span.set("args", std::move(args));
      events.push(std::move(span));
      r = end;
    }

    if (instance.rounds.size() <= options.counter_round_cap) {
      for (const TraceInstance::Round& round : instance.rounds) {
        Json counter = event_base("traffic", "C", i);
        counter.set("ts", round.round);
        Json args = Json::object();
        args.set("bits", round.bits);
        args.set("messages", round.messages);
        counter.set("args", std::move(args));
        events.push(std::move(counter));
      }
    }
  }

  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  // 1 virtual microsecond == 1 CONGEST round (see header comment).
  doc.set("displayTimeUnit", "ms");
  doc.write(os, -1);
  os << '\n';
}

}  // namespace csd::obs
