// Opt-in per-round message/bit recorder for the CONGEST engines.
//
// A RunTrace rides inside a RunOutcome: each Network::run (or async run)
// fills its own instance, so concurrent runs under RunBatch need no locks —
// the per-task buffers are merged afterwards in deterministic task order by
// run_amplified (RunBatch already returns outcomes in task order). The
// trace is therefore bit-identical for every --jobs count, exactly like the
// metrics it refines.
//
// Cost model: a disabled trace is a default-constructed object — no
// allocation, and the engines guard every record() behind a single
// well-predicted `if (trace)`, so the hot path pays one branch and nothing
// else. RunMetrics::trace_bytes reports the observer's storage footprint
// (0 when disabled), which test_obs pins down.
//
// Recorded per round (sender-side accounting, matching RunMetrics):
//   * total messages and payload bits,
//   * optionally per-node messages/bits (TraceOptions::per_node),
// plus a run-wide message-size histogram in power-of-two buckets
// (TraceOptions::histogram). The JSONL sink writes one compact JSON object
// per line: a header, one line per round, and a summary with the histogram
// — machine-exact round/bit trajectories for bench_compare and for the
// broadcast-CONGEST baselines PAPERS.md points at.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace csd::obs {

struct TraceOptions {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// Record per-node message/bit counts each round (memory: O(rounds * n)).
  bool per_node = true;
  /// Maintain the run-wide message-size histogram.
  bool histogram = true;
};

/// One round's traffic. `node_*` vectors are empty unless per_node is set.
struct RoundRecord {
  std::uint64_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::vector<std::uint64_t> node_messages;
  std::vector<std::uint64_t> node_bits;
};

class RunTrace {
 public:
  /// Disabled trace (records nothing, allocates nothing).
  RunTrace() = default;
  RunTrace(std::uint32_t num_nodes, const TraceOptions& options);

  bool enabled() const noexcept { return enabled_; }
  explicit operator bool() const noexcept { return enabled_; }

  /// Account one message of `bits` payload bits sent by node `src` in
  /// `round`. Rounds may be recorded out of order (the async engine's
  /// pulses interleave across nodes); the vector grows as needed and
  /// quiet rounds keep zero records.
  void record(std::uint64_t round, std::uint32_t src, std::uint64_t bits);

  /// Append `other` as the next repetition. Contract, by receiver state:
  ///   * enabled: `other`'s rounds are re-based after this trace's last
  ///     round, histograms and totals are summed, and the segment boundary
  ///     is remembered so the JSONL sink can label repetitions;
  ///   * default-constructed (never configured): adopts `other` wholesale,
  ///     including its segment boundaries — the merge-accumulator idiom
  ///     used by run_amplified and the CLI;
  ///   * explicitly configured with TraceOptions::enabled == false: no-op.
  ///     The receiver keeps its own (disabled) configuration instead of
  ///     silently inheriting the donor's options, which historically turned
  ///     a deliberately disabled trace into an enabled one.
  /// Appending a disabled `other` is always a no-op.
  void append(const RunTrace& other);

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  const std::vector<RoundRecord>& rounds() const noexcept { return rounds_; }
  /// histogram()[b] counts messages whose payload size in bits lies in
  /// [2^(b-1), 2^b); bucket 0 counts empty (0-bit) messages alone.
  const std::vector<std::uint64_t>& histogram() const noexcept {
    return histogram_;
  }
  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t total_bits() const noexcept { return total_bits_; }
  /// Number of appended run segments (1 for a plain run, R for amplified).
  std::uint64_t segments() const noexcept {
    return segment_starts_.empty() ? (rounds_.empty() ? 0 : 1)
                                   : segment_starts_.size();
  }

  /// Observer storage footprint in bytes (0 when disabled) — the number
  /// RunMetrics::trace_bytes exposes.
  std::uint64_t approx_bytes() const noexcept;

  /// JSONL sink: header line, one line per round, summary line. Output is a
  /// pure function of the recorded data (no timestamps, no pointers), so it
  /// is bit-identical across thread counts and re-runs.
  void write_jsonl(std::ostream& os) const;

 private:
  void ensure_round(std::uint64_t round);

  bool enabled_ = false;
  /// True once a configuration was chosen (the 2-arg constructor ran or a
  /// donor was adopted); distinguishes a deliberate disabled trace from a
  /// default-constructed accumulator in append().
  bool configured_ = false;
  TraceOptions options_;
  std::uint32_t num_nodes_ = 0;
  std::vector<RoundRecord> rounds_;
  std::vector<std::uint64_t> histogram_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bits_ = 0;
  /// Index into rounds_ where each appended segment starts.
  std::vector<std::uint64_t> segment_starts_;
};

}  // namespace csd::obs
