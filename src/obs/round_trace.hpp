// Opt-in per-round message/bit recorder for the CONGEST engines.
//
// A RunTrace rides inside a RunOutcome: each Network::run (or async run)
// fills its own instance, so concurrent runs under RunBatch need no locks —
// the per-task buffers are merged afterwards in deterministic task order by
// run_amplified (RunBatch already returns outcomes in task order). The
// trace is therefore bit-identical for every --jobs count, exactly like the
// metrics it refines.
//
// Cost model: a disabled trace is a default-constructed object — no
// allocation, and the engines guard every record() behind a single
// well-predicted `if (trace)`, so the hot path pays one branch and nothing
// else. RunMetrics::trace_bytes reports the observer's storage footprint
// (0 when disabled), which test_obs pins down.
//
// Recorded per round (sender-side accounting, matching RunMetrics):
//   * total messages and payload bits,
//   * optionally per-node messages/bits (TraceOptions::per_node),
//   * the algorithmic phase the round belongs to, when the node program
//     declares one through NodeApi::phase (phase spans, schema v2),
// plus run-wide aggregates: a message-size histogram in power-of-two
// buckets (TraceOptions::histogram), per-directed-edge message/bit totals
// (TraceOptions::per_edge — the raw material of the §3.4 cut-traffic
// claims), engine counters (set_counters), and free-form header metadata
// (set_meta — instance parameters, so multi-instance JSONL files demux).
//
// The JSONL sink writes one compact JSON object per line: a header, one
// line per round, one line per directed edge (per_edge only, sorted by
// (src, dst)), and a summary with histogram / per-phase totals / non-zero
// counters — machine-exact trajectories for bench_compare, `csd analyze`,
// and tools/trace_report.py. Everything emitted is a pure function of the
// recorded model-level data: no timestamps, no pointers, no wall clock
// (EngineTimers lives in RunMetrics for exactly that reason), so a
// fault-free async trace is byte-identical to the synchronous one and any
// trace is byte-identical at every --jobs count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace csd::obs {

struct TraceOptions {
  /// Master switch; everything below except `timers` is ignored when false.
  bool enabled = false;
  /// Record per-node message/bit counts each round (memory: O(rounds * n)).
  bool per_node = true;
  /// Maintain the run-wide message-size histogram.
  bool histogram = true;
  /// Attribute traffic to directed edges (memory: O(edges used)). Off by
  /// default: most callers want trajectories, not congestion maps.
  bool per_edge = false;
  /// Wall-clock the engine internals (compute / delivery / transport) into
  /// RunMetrics::timers (sync) or AsyncRunOutcome::timers (async). This
  /// never touches the trace itself — timings are not deterministic, traces
  /// are — and is honored even when `enabled` is false.
  bool timers = false;
};

/// One round's traffic. `node_*` vectors are empty unless per_node is set;
/// `phase` indexes RunTrace::phase_names() (-1 = no phase declared).
struct RoundRecord {
  std::uint64_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::int32_t phase = -1;
  std::vector<std::uint64_t> node_messages;
  std::vector<std::uint64_t> node_bits;
};

/// Directed-edge traffic totals (per_edge only).
struct EdgeRecord {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

class RunTrace {
 public:
  /// Disabled trace (records nothing, allocates nothing).
  RunTrace() = default;
  RunTrace(std::uint32_t num_nodes, const TraceOptions& options);

  bool enabled() const noexcept { return enabled_; }
  explicit operator bool() const noexcept { return enabled_; }

  /// Account one message of `bits` payload bits sent by node `src` to node
  /// `dst` in `round`. Rounds may be recorded out of order (the async
  /// engine's pulses interleave across nodes); the vector grows as needed
  /// and quiet rounds keep zero records.
  void record(std::uint64_t round, std::uint32_t src, std::uint32_t dst,
              std::uint64_t bits);

  /// Declare that `round` belongs to algorithmic phase `name`. First
  /// declaration wins (all detection programs derive the phase from the
  /// round number alone, so every node declares the same name; the rule
  /// just avoids per-node bookkeeping). Safe to call before or after the
  /// round's record() calls.
  void set_phase(std::uint64_t round, std::string_view name);

  /// Stamp a (key, value) pair into the JSONL header — instance parameters
  /// (program, n, seed, ...) so multi-instance trace files demux. Last
  /// write to a key wins. Values are emitted as JSON strings.
  void set_meta(std::string_view key, std::string_view value);

  /// Replace the engine-counter block copied into the JSONL summary (only
  /// non-zero entries are emitted, so clean runs add no bytes).
  void set_counters(const MetricsRegistry& counters);

  /// Declare that the run executed `rounds` rounds in total, materializing
  /// quiet trailing rounds (a trace otherwise ends at the last round that
  /// sent a message). Called by both engines at the end of a run so
  /// rounds / segments is exactly the per-repetition round count — the
  /// quantity the rounds-vs-n exponent fit consumes.
  void finish_run(std::uint64_t rounds);

  /// Append `other` as the next repetition. Contract, by receiver state:
  ///   * enabled: `other`'s rounds are re-based after this trace's last
  ///     round, histograms / edge totals / counters / totals are summed,
  ///     phase names are re-interned by name, the receiver's meta is kept,
  ///     and the segment boundary is remembered so the JSONL sink can label
  ///     repetitions;
  ///   * default-constructed (never configured): adopts `other` wholesale,
  ///     including its segment boundaries — the merge-accumulator idiom
  ///     used by run_amplified and the CLI;
  ///   * explicitly configured with TraceOptions::enabled == false: no-op.
  ///     The receiver keeps its own (disabled) configuration instead of
  ///     silently inheriting the donor's options, which historically turned
  ///     a deliberately disabled trace into an enabled one.
  /// Appending a disabled `other` is always a no-op.
  void append(const RunTrace& other);

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  const std::vector<RoundRecord>& rounds() const noexcept { return rounds_; }
  /// histogram()[b] counts messages whose payload size in bits lies in
  /// [2^(b-1), 2^b); bucket 0 counts empty (0-bit) messages alone.
  const std::vector<std::uint64_t>& histogram() const noexcept {
    return histogram_;
  }
  /// Phase names in first-declaration order; RoundRecord::phase indexes it.
  const std::vector<std::string>& phase_names() const noexcept {
    return phase_names_;
  }
  /// Directed-edge totals keyed (src << 32) | dst (per_edge only).
  const std::unordered_map<std::uint64_t, EdgeRecord>& edges() const noexcept {
    return edges_;
  }
  const std::vector<std::pair<std::string, std::string>>& meta()
      const noexcept {
    return meta_;
  }
  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t total_bits() const noexcept { return total_bits_; }
  /// Number of appended run segments (1 for a plain run, R for amplified).
  std::uint64_t segments() const noexcept {
    return segment_starts_.empty() ? (rounds_.empty() ? 0 : 1)
                                   : segment_starts_.size();
  }

  /// Observer storage footprint in bytes (0 when disabled) — the number
  /// RunMetrics::trace_bytes exposes.
  std::uint64_t approx_bytes() const noexcept;

  /// JSONL sink: header line, one line per round, one line per directed
  /// edge (per_edge, sorted), summary line. Output is a pure function of
  /// the recorded data (no timestamps, no pointers), so it is bit-identical
  /// across thread counts and re-runs.
  void write_jsonl(std::ostream& os) const;

 private:
  void ensure_round(std::uint64_t round);
  std::int32_t intern_phase(std::string_view name);

  bool enabled_ = false;
  /// True once a configuration was chosen (the 2-arg constructor ran or a
  /// donor was adopted); distinguishes a deliberate disabled trace from a
  /// default-constructed accumulator in append().
  bool configured_ = false;
  TraceOptions options_;
  std::uint32_t num_nodes_ = 0;
  std::vector<RoundRecord> rounds_;
  std::vector<std::uint64_t> histogram_;
  std::vector<std::string> phase_names_;
  std::unordered_map<std::uint64_t, EdgeRecord> edges_;
  std::vector<std::pair<std::string, std::string>> meta_;
  MetricsRegistry counters_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bits_ = 0;
  /// Index into rounds_ where each appended segment starts.
  std::vector<std::uint64_t> segment_starts_;
};

}  // namespace csd::obs
