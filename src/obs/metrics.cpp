#include "obs/metrics.hpp"

namespace csd::obs {

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  for (auto& [key, value] : entries_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  entries_.emplace_back(std::string(name), delta);
}

std::uint64_t MetricsRegistry::value(std::string_view name) const noexcept {
  for (const auto& [key, value] : entries_)
    if (key == name) return value;
  return 0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.entries_) add(key, value);
}

std::string worker_counter_name(std::string_view base, std::uint32_t worker) {
  std::string name(base);
  name += "_w";
  name += std::to_string(worker);
  return name;
}

}  // namespace csd::obs
