// Named-counter registry + engine wall-clock timers.
//
// MetricsRegistry surfaces counters the engines historically kept internal
// (ARQ retransmits, duplicate acks, CRC rejections, injected faults) as an
// insertion-ordered list of (name, value) pairs. Both CONGEST engines fill
// one per run from their FaultReport; run_amplified merges them by name in
// repetition order, so the aggregate is bit-identical at every --jobs count
// exactly like the rest of RunMetrics. RunTrace copies the registry into
// its JSONL summary (non-zero entries only, so fault-free sync and async
// traces stay byte-identical — neither engine has anything to report).
//
// EngineTimers is the *only* wall-clock data the observability layer keeps,
// and it deliberately lives outside RunTrace: trace output is a pure
// function of the recorded model-level data (bit-identical across runs,
// thread counts, and machines), while nanosecond timings are none of those
// things. Timing is opt-in via TraceOptions::timers and costs two
// steady_clock reads per round (sync) / per event (async) when enabled,
// nothing when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csd::obs {

/// Insertion-ordered named counters. Linear-scan lookup: registries hold a
/// dozen engine counters, not a metrics database.
class MetricsRegistry {
 public:
  /// Accumulate `delta` into `name`, creating the entry (value 0) on first
  /// use. Entries keep first-add order.
  void add(std::string_view name, std::uint64_t delta);

  /// Value of `name`; 0 if never added.
  std::uint64_t value(std::string_view name) const noexcept;

  const std::vector<std::pair<std::string, std::uint64_t>>& entries()
      const noexcept {
    return entries_;
  }
  bool empty() const noexcept { return entries_.empty(); }

  /// Sum `other` into this registry, name by name; names new to the
  /// receiver are appended in the donor's order (deterministic merge).
  void merge(const MetricsRegistry& other);

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

/// Canonical name of a per-worker engine counter ("<base>_w<worker>",
/// e.g. "shard_channel_bytes_w3"). One formatter so the sharded engine,
/// the tests, and the trace tooling never drift on the spelling.
std::string worker_counter_name(std::string_view base, std::uint32_t worker);

/// Sender-side wall-clock split of where a run's time went. Buckets:
///   * compute_ns   — node programs (NodeProgram::on_round);
///   * delivery_ns  — message delivery (sync) / synchronizer + frame
///                    delivery events (async), net of nested compute;
///   * transport_ns — reliable-transport events: acks and retransmission
///                    timers (async engine only; always 0 on the sync one).
/// `enabled` records whether timing ran at all (so an all-zero split from a
/// sub-nanosecond run is distinguishable from timing being off).
struct EngineTimers {
  bool enabled = false;
  std::uint64_t compute_ns = 0;
  std::uint64_t delivery_ns = 0;
  std::uint64_t transport_ns = 0;

  std::uint64_t total_ns() const noexcept {
    return compute_ns + delivery_ns + transport_ns;
  }

  void merge(const EngineTimers& other) noexcept {
    enabled = enabled || other.enabled;
    compute_ns += other.compute_ns;
    delivery_ns += other.delivery_ns;
    transport_ns += other.transport_ns;
  }
};

}  // namespace csd::obs
