#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>

#include "obs/json.hpp"
#include "support/check.hpp"

namespace csd::obs {

std::optional<std::string> TraceInstance::meta_value(
    std::string_view key) const {
  for (const auto& [k, v] : meta)
    if (k == key) return v;
  return std::nullopt;
}

std::optional<double> TraceInstance::meta_number(std::string_view key) const {
  const auto value = meta_value(key);
  if (!value.has_value()) return std::nullopt;
  double number = 0.0;
  const char* begin = value->data();
  const char* end = begin + value->size();
  const auto [ptr, ec] = std::from_chars(begin, end, number);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return number;
}

double TraceInstance::rounds_per_segment() const {
  if (segments == 0) return 0.0;
  return static_cast<double>(declared_rounds) / static_cast<double>(segments);
}

std::string TraceInstance::fit_group() const {
  if (const auto group = meta_value("group"); group.has_value()) return *group;
  if (const auto program = meta_value("program"); program.has_value())
    return *program;
  return "";
}

std::vector<TraceInstance> parse_trace_jsonl(std::istream& is) {
  std::vector<TraceInstance> instances;
  TraceInstance* current = nullptr;
  bool summary_seen = true;  // a header must open each instance
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const Json doc = Json::parse(line);
    const std::string& type = doc.at("type").as_string();
    if (type == "header") {
      CSD_CHECK_MSG(summary_seen,
                    "trace line " << line_no
                                  << ": header before previous summary");
      summary_seen = false;
      instances.emplace_back();
      current = &instances.back();
      const std::string& schema = doc.at("schema").as_string();
      CSD_CHECK_MSG(schema == "csd-trace-v1" || schema == "csd-trace-v2",
                    "trace line " << line_no << ": unknown schema " << schema);
      current->nodes = doc.at("nodes").as_uint();
      current->declared_rounds = doc.at("rounds").as_uint();
      current->segments = doc.at("segments").as_uint();
      current->per_node = doc.at("per_node").as_bool();
      if (const Json* per_edge = doc.find("per_edge"))
        current->per_edge = per_edge->as_bool();
      if (const Json* meta = doc.find("meta"))
        for (const auto& [key, value] : meta->members())
          current->meta.emplace_back(key, value.as_string());
      if (const Json* starts = doc.find("segment_starts"))
        for (const Json& start : starts->items())
          current->segment_starts.push_back(start.as_uint());
      continue;
    }
    CSD_CHECK_MSG(current != nullptr && !summary_seen,
                  "trace line " << line_no << ": '" << type
                                << "' line outside an instance");
    if (type == "round") {
      TraceInstance::Round round;
      round.round = doc.at("round").as_uint();
      round.messages = doc.at("messages").as_uint();
      round.bits = doc.at("bits").as_uint();
      if (const Json* phase = doc.find("phase"))
        round.phase = phase->as_string();
      current->rounds.push_back(std::move(round));
    } else if (type == "edge") {
      TraceInstance::Edge edge;
      edge.src = static_cast<std::uint32_t>(doc.at("src").as_uint());
      edge.dst = static_cast<std::uint32_t>(doc.at("dst").as_uint());
      edge.messages = doc.at("messages").as_uint();
      edge.bits = doc.at("bits").as_uint();
      current->edges.push_back(edge);
    } else if (type == "summary") {
      summary_seen = true;
      current->total_messages = doc.at("total_messages").as_uint();
      current->total_bits = doc.at("total_bits").as_uint();
      if (const Json* phases = doc.find("phases")) {
        for (const Json& item : phases->items()) {
          TraceInstance::Phase phase;
          phase.name = item.at("name").as_string();
          phase.rounds = item.at("rounds").as_uint();
          phase.messages = item.at("messages").as_uint();
          phase.bits = item.at("bits").as_uint();
          current->phases.push_back(std::move(phase));
        }
      }
      if (const Json* counters = doc.find("counters"))
        for (const auto& [name, value] : counters->members())
          current->counters.emplace_back(name, value.as_uint());
    } else {
      CSD_CHECK_MSG(false,
                    "trace line " << line_no << ": unknown type " << type);
    }
  }
  CSD_CHECK_MSG(summary_seen, "trace ends mid-instance (no summary line)");
  return instances;
}

std::optional<PowerLawFit> fit_power_law(
    const std::vector<std::pair<double, double>>& xy) {
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  std::size_t count = 0;
  double first_x = 0.0;
  bool distinct_x = false;
  for (const auto& [x, y] : xy) {
    if (!(x > 0.0) || !(y > 0.0)) continue;
    const double lx = std::log(x);
    const double ly = std::log(y);
    if (count == 0)
      first_x = lx;
    else if (lx != first_x)
      distinct_x = true;
    sum_x += lx;
    sum_y += ly;
    sum_xx += lx * lx;
    sum_xy += lx * ly;
    ++count;
  }
  if (count < 2 || !distinct_x) return std::nullopt;
  const double denom =
      static_cast<double>(count) * sum_xx - sum_x * sum_x;
  PowerLawFit fit;
  fit.exponent =
      (static_cast<double>(count) * sum_xy - sum_x * sum_y) / denom;
  fit.log_coeff = (sum_y - fit.exponent * sum_x) / static_cast<double>(count);
  fit.points = count;
  return fit;
}

std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
rounds_vs_n_points(const std::vector<TraceInstance>& instances) {
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      groups;
  for (const TraceInstance& instance : instances) {
    const auto n = instance.meta_number("n");
    if (!n.has_value()) continue;
    const double rounds = instance.rounds_per_segment();
    if (!(rounds > 0.0)) continue;
    const std::string group = instance.fit_group();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == group; });
    if (it == groups.end()) {
      groups.emplace_back(group,
                          std::vector<std::pair<double, double>>{});
      it = groups.end() - 1;
    }
    it->second.emplace_back(*n, rounds);
  }
  return groups;
}

std::uint64_t cut_traffic_bits(const TraceInstance& instance,
                               std::uint64_t boundary) {
  std::uint64_t bits = 0;
  for (const TraceInstance::Edge& edge : instance.edges) {
    const bool src_left = edge.src < boundary;
    const bool dst_left = edge.dst < boundary;
    if (src_left != dst_left) bits += edge.bits;
  }
  return bits;
}

std::vector<TraceInstance::Edge> top_edges_by_bits(
    const TraceInstance& instance, std::size_t k) {
  std::vector<TraceInstance::Edge> edges = instance.edges;
  std::sort(edges.begin(), edges.end(),
            [](const TraceInstance::Edge& a, const TraceInstance::Edge& b) {
              if (a.bits != b.bits) return a.bits > b.bits;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  if (edges.size() > k) edges.resize(k);
  return edges;
}

}  // namespace csd::obs
