// Chrome trace-event exporter (chrome://tracing / Perfetto / ui.perfetto.dev).
//
// Converts parsed csd-trace instances into the JSON trace-event format:
// each instance becomes one process (pid = instance index, labeled from its
// header meta), each maximal run of rounds sharing a phase becomes one
// complete ("ph":"X") event, and per-round bit/message counts become
// counter ("ph":"C") tracks. Time is *virtual*: 1 trace microsecond = 1
// CONGEST round, so the viewer's timeline reads directly in rounds.
//
// The output is a pure function of the parsed instances — no wall clock —
// so golden tests can pin it byte-for-byte.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace csd::obs {

struct ChromeTraceOptions {
  /// Emit per-round counter events only when an instance has at most this
  /// many rounds; long amplified traces keep their phase spans but skip the
  /// per-round counter track (it would dominate the file size).
  std::uint64_t counter_round_cap = 4096;
};

/// Write `instances` as one trace-event JSON document.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceInstance>& instances,
                        const ChromeTraceOptions& options = {});

}  // namespace csd::obs
