#include "obs/round_trace.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "support/bits.hpp"
#include "support/check.hpp"

namespace csd::obs {

namespace {

/// Bucket 0 holds empty messages; bucket b >= 1 holds sizes in
/// [2^(b-1), 2^b). 64-bit sizes need at most 65 buckets.
std::size_t size_bucket(std::uint64_t bits) {
  if (bits == 0) return 0;
  return static_cast<std::size_t>(bit_width64(bits));
}

std::uint64_t edge_key(std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

RunTrace::RunTrace(std::uint32_t num_nodes, const TraceOptions& options)
    : enabled_(options.enabled),
      configured_(true),
      options_(options),
      num_nodes_(num_nodes) {}

void RunTrace::record(std::uint64_t round, std::uint32_t src,
                      std::uint32_t dst, std::uint64_t bits) {
  if (!enabled_) return;
  CSD_CHECK_MSG(src < num_nodes_, "trace record from unknown node");
  CSD_CHECK_MSG(dst < num_nodes_, "trace record to unknown node");
  ensure_round(round);
  RoundRecord& rec = rounds_[round];
  ++rec.messages;
  rec.bits += bits;
  if (options_.per_node) {
    ++rec.node_messages[src];
    rec.node_bits[src] += bits;
  }
  if (options_.per_edge) {
    EdgeRecord& edge = edges_[edge_key(src, dst)];
    ++edge.messages;
    edge.bits += bits;
  }
  if (options_.histogram) {
    const std::size_t bucket = size_bucket(bits);
    if (histogram_.size() <= bucket) histogram_.resize(bucket + 1, 0);
    ++histogram_[bucket];
  }
  ++total_messages_;
  total_bits_ += bits;
}

std::int32_t RunTrace::intern_phase(std::string_view name) {
  for (std::size_t i = 0; i < phase_names_.size(); ++i)
    if (phase_names_[i] == name) return static_cast<std::int32_t>(i);
  phase_names_.emplace_back(name);
  return static_cast<std::int32_t>(phase_names_.size() - 1);
}

void RunTrace::set_phase(std::uint64_t round, std::string_view name) {
  if (!enabled_) return;
  ensure_round(round);
  if (rounds_[round].phase >= 0) return;  // first declaration wins
  rounds_[round].phase = intern_phase(name);
}

void RunTrace::set_meta(std::string_view key, std::string_view value) {
  if (!enabled_) return;
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(std::string(key), std::string(value));
}

void RunTrace::set_counters(const MetricsRegistry& counters) {
  if (!enabled_) return;
  counters_ = counters;
}

void RunTrace::finish_run(std::uint64_t rounds) {
  if (!enabled_) return;
  if (rounds > rounds_.size()) ensure_round(rounds - 1);
}

void RunTrace::ensure_round(std::uint64_t round) {
  if (round < rounds_.size()) return;
  const std::uint64_t old_size = rounds_.size();
  rounds_.resize(round + 1);
  for (std::uint64_t r = old_size; r <= round; ++r) {
    rounds_[r].round = r;
    if (options_.per_node) {
      rounds_[r].node_messages.assign(num_nodes_, 0);
      rounds_[r].node_bits.assign(num_nodes_, 0);
    }
  }
}

void RunTrace::append(const RunTrace& other) {
  if (!other.enabled_) return;
  if (!enabled_) {
    // A configured-but-disabled receiver stays disabled: adopting the donor
    // would discard the receiver's own configuration (the historical bug).
    // Only a default-constructed accumulator adopts the donor wholesale.
    if (configured_) return;
    *this = other;
    if (segment_starts_.empty() && !rounds_.empty())
      segment_starts_.push_back(0);
    return;
  }
  CSD_CHECK_MSG(num_nodes_ == other.num_nodes_,
                "appending traces of different networks");
  if (segment_starts_.empty() && !rounds_.empty())
    segment_starts_.push_back(0);
  const std::uint64_t base = rounds_.size();
  segment_starts_.push_back(base);
  rounds_.reserve(base + other.rounds_.size());
  for (const RoundRecord& rec : other.rounds_) {
    rounds_.push_back(rec);
    rounds_.back().round = base + rec.round;
    // Re-intern by *name*: the donor's phase indices are private to it.
    if (rec.phase >= 0)
      rounds_.back().phase =
          intern_phase(other.phase_names_[static_cast<std::size_t>(rec.phase)]);
  }
  if (histogram_.size() < other.histogram_.size())
    histogram_.resize(other.histogram_.size(), 0);
  for (std::size_t b = 0; b < other.histogram_.size(); ++b)
    histogram_[b] += other.histogram_[b];
  for (const auto& [key, edge] : other.edges_) {
    EdgeRecord& mine = edges_[key];
    mine.messages += edge.messages;
    mine.bits += edge.bits;
  }
  counters_.merge(other.counters_);
  total_messages_ += other.total_messages_;
  total_bits_ += other.total_bits_;
}

std::uint64_t RunTrace::approx_bytes() const noexcept {
  if (!enabled_) return 0;
  std::uint64_t bytes = sizeof(*this);
  bytes += rounds_.capacity() * sizeof(RoundRecord);
  for (const RoundRecord& rec : rounds_)
    bytes += (rec.node_messages.capacity() + rec.node_bits.capacity()) *
             sizeof(std::uint64_t);
  bytes += histogram_.capacity() * sizeof(std::uint64_t);
  bytes += segment_starts_.capacity() * sizeof(std::uint64_t);
  // Hash-map internals vary by implementation; charge the payload per entry
  // plus one pointer of bucket overhead — a deterministic approximation.
  bytes += edges_.size() *
           (sizeof(std::uint64_t) + sizeof(EdgeRecord) + sizeof(void*));
  for (const std::string& name : phase_names_)
    bytes += sizeof(std::string) + name.size();
  for (const auto& [key, value] : meta_)
    bytes += 2 * sizeof(std::string) + key.size() + value.size();
  for (const auto& [name, value] : counters_.entries())
    bytes += sizeof(std::string) + name.size() + sizeof(value);
  return bytes;
}

void RunTrace::write_jsonl(std::ostream& os) const {
  const auto write_u64_array = [&](const char* key,
                                   const std::vector<std::uint64_t>& values) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ',';
      os << values[i];
    }
    os << ']';
  };

  os << "{\"type\":\"header\",\"schema\":\"csd-trace-v2\",\"nodes\":"
     << num_nodes_ << ",\"rounds\":" << rounds_.size()
     << ",\"segments\":" << segments() << ",\"per_node\":"
     << (options_.per_node ? "true" : "false") << ",\"per_edge\":"
     << (options_.per_edge ? "true" : "false");
  if (!meta_.empty()) {
    os << ",\"meta\":{";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i > 0) os << ',';
      write_json_string(os, meta_[i].first);
      os << ':';
      write_json_string(os, meta_[i].second);
    }
    os << '}';
  }
  if (!segment_starts_.empty())
    write_u64_array("segment_starts", segment_starts_);
  os << "}\n";

  for (const RoundRecord& rec : rounds_) {
    os << "{\"type\":\"round\",\"round\":" << rec.round
       << ",\"messages\":" << rec.messages << ",\"bits\":" << rec.bits;
    if (rec.phase >= 0) {
      os << ",\"phase\":";
      write_json_string(os, phase_names_[static_cast<std::size_t>(rec.phase)]);
    }
    if (options_.per_node) {
      write_u64_array("node_messages", rec.node_messages);
      write_u64_array("node_bits", rec.node_bits);
    }
    os << "}\n";
  }

  if (options_.per_edge) {
    std::vector<std::uint64_t> keys;
    keys.reserve(edges_.size());
    for (const auto& [key, edge] : edges_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t key : keys) {
      const EdgeRecord& edge = edges_.at(key);
      os << "{\"type\":\"edge\",\"src\":" << (key >> 32)
         << ",\"dst\":" << (key & 0xffffffffULL)
         << ",\"messages\":" << edge.messages << ",\"bits\":" << edge.bits
         << "}\n";
    }
  }

  os << "{\"type\":\"summary\",\"total_messages\":" << total_messages_
     << ",\"total_bits\":" << total_bits_;
  if (options_.histogram) write_u64_array("size_histogram", histogram_);
  if (!phase_names_.empty()) {
    // Per-phase totals in first-declaration order; rounds without a
    // declared phase stay unattributed (visible as the difference from the
    // run totals).
    struct PhaseTotal {
      std::uint64_t rounds = 0;
      std::uint64_t messages = 0;
      std::uint64_t bits = 0;
    };
    std::vector<PhaseTotal> totals(phase_names_.size());
    for (const RoundRecord& rec : rounds_) {
      if (rec.phase < 0) continue;
      PhaseTotal& total = totals[static_cast<std::size_t>(rec.phase)];
      ++total.rounds;
      total.messages += rec.messages;
      total.bits += rec.bits;
    }
    os << ",\"phases\":[";
    for (std::size_t i = 0; i < phase_names_.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"name\":";
      write_json_string(os, phase_names_[i]);
      os << ",\"rounds\":" << totals[i].rounds
         << ",\"messages\":" << totals[i].messages
         << ",\"bits\":" << totals[i].bits << '}';
    }
    os << ']';
  }
  // Non-zero counters only: a clean run's summary is byte-identical whether
  // it came from the sync engine (which never registers transport counters
  // above zero) or the async one. Emission is in sorted-name order — the
  // registry itself stays insertion-ordered (callers rely on that), but the
  // summary must not depend on which engine path registered a counter
  // first (DESIGN.md §14 documents this contract).
  std::vector<const std::pair<std::string, std::uint64_t>*> nonzero;
  for (const auto& entry : counters_.entries())
    if (entry.second != 0) nonzero.push_back(&entry);
  if (!nonzero.empty()) {
    std::sort(nonzero.begin(), nonzero.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    os << ",\"counters\":{";
    bool first = true;
    for (const auto* entry : nonzero) {
      if (!first) os << ',';
      first = false;
      write_json_string(os, entry->first);
      os << ':' << entry->second;
    }
    os << '}';
  }
  os << "}\n";
}

}  // namespace csd::obs
