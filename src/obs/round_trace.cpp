#include "obs/round_trace.hpp"

#include <bit>
#include <ostream>

#include "support/check.hpp"

namespace csd::obs {

namespace {

/// Bucket 0 holds empty messages; bucket b >= 1 holds sizes in
/// [2^(b-1), 2^b). 64-bit sizes need at most 65 buckets.
std::size_t size_bucket(std::uint64_t bits) {
  if (bits == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(bits));
}

}  // namespace

RunTrace::RunTrace(std::uint32_t num_nodes, const TraceOptions& options)
    : enabled_(options.enabled),
      configured_(true),
      options_(options),
      num_nodes_(num_nodes) {}

void RunTrace::record(std::uint64_t round, std::uint32_t src,
                      std::uint64_t bits) {
  if (!enabled_) return;
  CSD_CHECK_MSG(src < num_nodes_, "trace record from unknown node");
  ensure_round(round);
  RoundRecord& rec = rounds_[round];
  ++rec.messages;
  rec.bits += bits;
  if (options_.per_node) {
    ++rec.node_messages[src];
    rec.node_bits[src] += bits;
  }
  if (options_.histogram) {
    const std::size_t bucket = size_bucket(bits);
    if (histogram_.size() <= bucket) histogram_.resize(bucket + 1, 0);
    ++histogram_[bucket];
  }
  ++total_messages_;
  total_bits_ += bits;
}

void RunTrace::ensure_round(std::uint64_t round) {
  if (round < rounds_.size()) return;
  const std::uint64_t old_size = rounds_.size();
  rounds_.resize(round + 1);
  for (std::uint64_t r = old_size; r <= round; ++r) {
    rounds_[r].round = r;
    if (options_.per_node) {
      rounds_[r].node_messages.assign(num_nodes_, 0);
      rounds_[r].node_bits.assign(num_nodes_, 0);
    }
  }
}

void RunTrace::append(const RunTrace& other) {
  if (!other.enabled_) return;
  if (!enabled_) {
    // A configured-but-disabled receiver stays disabled: adopting the donor
    // would discard the receiver's own configuration (the historical bug).
    // Only a default-constructed accumulator adopts the donor wholesale.
    if (configured_) return;
    *this = other;
    if (segment_starts_.empty() && !rounds_.empty())
      segment_starts_.push_back(0);
    return;
  }
  CSD_CHECK_MSG(num_nodes_ == other.num_nodes_,
                "appending traces of different networks");
  if (segment_starts_.empty() && !rounds_.empty())
    segment_starts_.push_back(0);
  const std::uint64_t base = rounds_.size();
  segment_starts_.push_back(base);
  rounds_.reserve(base + other.rounds_.size());
  for (const RoundRecord& rec : other.rounds_) {
    rounds_.push_back(rec);
    rounds_.back().round = base + rec.round;
  }
  if (histogram_.size() < other.histogram_.size())
    histogram_.resize(other.histogram_.size(), 0);
  for (std::size_t b = 0; b < other.histogram_.size(); ++b)
    histogram_[b] += other.histogram_[b];
  total_messages_ += other.total_messages_;
  total_bits_ += other.total_bits_;
}

std::uint64_t RunTrace::approx_bytes() const noexcept {
  if (!enabled_) return 0;
  std::uint64_t bytes = sizeof(*this);
  bytes += rounds_.capacity() * sizeof(RoundRecord);
  for (const RoundRecord& rec : rounds_)
    bytes += (rec.node_messages.capacity() + rec.node_bits.capacity()) *
             sizeof(std::uint64_t);
  bytes += histogram_.capacity() * sizeof(std::uint64_t);
  bytes += segment_starts_.capacity() * sizeof(std::uint64_t);
  return bytes;
}

void RunTrace::write_jsonl(std::ostream& os) const {
  const auto write_u64_array = [&](const char* key,
                                   const std::vector<std::uint64_t>& values) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ',';
      os << values[i];
    }
    os << ']';
  };

  os << "{\"type\":\"header\",\"schema\":\"csd-trace-v1\",\"nodes\":"
     << num_nodes_ << ",\"rounds\":" << rounds_.size()
     << ",\"segments\":" << segments() << ",\"per_node\":"
     << (options_.per_node ? "true" : "false");
  if (!segment_starts_.empty())
    write_u64_array("segment_starts", segment_starts_);
  os << "}\n";

  for (const RoundRecord& rec : rounds_) {
    os << "{\"type\":\"round\",\"round\":" << rec.round
       << ",\"messages\":" << rec.messages << ",\"bits\":" << rec.bits;
    if (options_.per_node) {
      write_u64_array("node_messages", rec.node_messages);
      write_u64_array("node_bits", rec.node_bits);
    }
    os << "}\n";
  }

  os << "{\"type\":\"summary\",\"total_messages\":" << total_messages_
     << ",\"total_bits\":" << total_bits_;
  if (options_.histogram) write_u64_array("size_histogram", histogram_);
  os << "}\n";
}

}  // namespace csd::obs
