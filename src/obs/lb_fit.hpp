// Error-barred power-law fits for the lower-bound measurement sweeps.
//
// A scaled sweep produces, at each abscissa x (a graph size n, a universe
// size, a bandwidth), a block of per-seed measurements y — one row per seed
// of a simulate_across_cut_batch / evaluate_one_round_batch call. The point
// estimate is the least-squares power-law fit (obs/trace_analysis.hpp)
// through the per-block means; the error bars come from a block bootstrap:
// resample each block's seeds with replacement, refit, and take percentile
// quantiles of the resampled exponents. Blocks are resampled independently,
// which matches how the data was generated (seeds are independent within a
// size, sizes share nothing).
//
// Everything is deterministic: the resampling RNG derives from the caller's
// seed, and quantiles use nearest-rank on the sorted resample list — the
// same inputs give bit-identical intervals on every run, so tools/lb_gate.py
// can gate on them exactly.
//
// Fits consume the *raw* (unclamped) estimator values where they exist
// (OneRoundStats::info_messages_raw): clamping before fitting would bias
// the very curves these intervals are meant to qualify. Non-positive values
// cannot enter a log-log fit, so each resample drops them point-wise and
// the report counts how often that happened (dropped_points) instead of
// hiding it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace csd::obs {

struct BootstrapFit {
  /// Point estimate: fit through the per-block means of the full data.
  PowerLawFit fit;
  /// Percentile bootstrap CI for the exponent.
  double exponent_lo = 0.0;
  double exponent_hi = 0.0;
  double confidence = 0.95;
  std::uint32_t resamples = 0;
  /// Resamples whose refit failed (fewer than two positive-mean blocks
  /// survived); their exponents are excluded from the quantiles.
  std::uint32_t degenerate_resamples = 0;
  /// (block, resample) pairs whose resampled mean was non-positive and was
  /// therefore dropped from that resample's log-log fit. 0 for well-behaved
  /// measurements; nonzero flags estimator bias worth looking at.
  std::uint64_t dropped_points = 0;
};

/// Block bootstrap over per-abscissa seed blocks. `xs[i]` is the abscissa of
/// block i and `ys_per_x[i]` its per-seed measurements (at least one value
/// per block; blocks need not be equal-sized). Returns nullopt when the
/// point fit itself is impossible (fewer than two distinct abscissae with
/// positive mean). Deterministic in (inputs, resamples, seed).
std::optional<BootstrapFit> bootstrap_power_law_blocks(
    const std::vector<double>& xs,
    const std::vector<std::vector<double>>& ys_per_x,
    std::uint32_t resamples, std::uint64_t seed, double confidence = 0.95);

/// Convenience overload for flat per-seed points: rows with bit-equal x
/// form one block (the sweep emitted them at the same size). Blocks are
/// ordered by ascending x regardless of row order; within a block, rows
/// keep their input order (which is part of the deterministic input — the
/// sweeps emit rows in seed order).
std::optional<BootstrapFit> bootstrap_power_law(
    const std::vector<std::pair<double, double>>& xy_per_seed,
    std::uint32_t resamples, std::uint64_t seed, double confidence = 0.95);

}  // namespace csd::obs
