#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace csd::obs {

bool Json::as_bool() const {
  CSD_CHECK_MSG(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

std::uint64_t Json::as_uint() const {
  if (kind_ == Kind::Int) {
    CSD_CHECK_MSG(int_ >= 0, "negative JSON integer read as unsigned");
    return static_cast<std::uint64_t>(int_);
  }
  CSD_CHECK_MSG(kind_ == Kind::Uint, "JSON value is not an unsigned integer");
  return uint_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::Uint) {
    CSD_CHECK_MSG(uint_ <= static_cast<std::uint64_t>(
                               std::numeric_limits<std::int64_t>::max()),
                  "JSON integer overflows int64");
    return static_cast<std::int64_t>(uint_);
  }
  CSD_CHECK_MSG(kind_ == Kind::Int, "JSON value is not an integer");
  return int_;
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::Uint:
      return static_cast<double>(uint_);
    case Kind::Int:
      return static_cast<double>(int_);
    case Kind::Double:
      return double_;
    default:
      CSD_CHECK_MSG(false, "JSON value is not numeric");
      return 0.0;
  }
}

const std::string& Json::as_string() const {
  CSD_CHECK_MSG(kind_ == Kind::String, "JSON value is not a string");
  return string_;
}

Json& Json::push(Json value) {
  CSD_CHECK_MSG(kind_ == Kind::Array, "push on a non-array JSON value");
  array_.push_back(std::move(value));
  return *this;
}

const std::vector<Json>& Json::items() const {
  CSD_CHECK_MSG(kind_ == Kind::Array, "items on a non-array JSON value");
  return array_;
}

Json& Json::set(std::string key, Json value) {
  CSD_CHECK_MSG(kind_ == Kind::Object, "set on a non-object JSON value");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  CSD_CHECK_MSG(found != nullptr, "missing JSON object key '" << key << "'");
  return *found;
}

const Json* Json::find(std::string_view key) const {
  CSD_CHECK_MSG(kind_ == Kind::Object, "find on a non-object JSON value");
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  CSD_CHECK_MSG(kind_ == Kind::Object, "members on a non-object JSON value");
  return object_;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string format_json_double(double value) {
  CSD_CHECK_MSG(std::isfinite(value),
                "JSON cannot represent non-finite number");
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  CSD_CHECK(ec == std::errc{});
  std::string s(buf, ptr);
  // Keep the Double kind on re-parse: 3.0 must not collapse to the int 3.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void Json::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

void Json::write_indented(std::ostream& os, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::Null:
      os << "null";
      break;
    case Kind::Bool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::Uint:
      os << uint_;
      break;
    case Kind::Int:
      os << int_;
      break;
    case Kind::Double:
      os << format_json_double(double_);
      break;
    case Kind::String:
      write_json_string(os, string_);
      break;
    case Kind::Array: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      // Arrays of scalars stay on one line even in pretty mode (the trace
      // per-node vectors would otherwise dominate the file).
      bool scalar_only = true;
      for (const Json& item : array_)
        scalar_only = scalar_only && item.kind_ != Kind::Array &&
                      item.kind_ != Kind::Object;
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << (scalar_only && pretty ? ", " : ",");
        if (!scalar_only) newline_pad(depth + 1);
        array_[i].write_indented(os, scalar_only ? -1 : indent, depth + 1);
      }
      if (!scalar_only) newline_pad(depth);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        newline_pad(depth + 1);
        write_json_string(os, object_[i].first);
        os << (pretty ? ": " : ":");
        object_[i].second.write_indented(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << '}';
      break;
    }
  }
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) {
    // Uint/Int cross-compare: a non-negative Int equals the same Uint.
    if (a.is_number() && b.is_number() && a.kind_ != Json::Kind::Double &&
        b.kind_ != Json::Kind::Double)
      return a.as_int() == b.as_int();
    return false;
  }
  switch (a.kind_) {
    case Json::Kind::Null:
      return true;
    case Json::Kind::Bool:
      return a.bool_ == b.bool_;
    case Json::Kind::Uint:
      return a.uint_ == b.uint_;
    case Json::Kind::Int:
      return a.int_ == b.int_;
    case Json::Kind::Double:
      return a.double_ == b.double_;
    case Json::Kind::String:
      return a.string_ == b.string_;
    case Json::Kind::Array:
      return a.array_ == b.array_;
    case Json::Kind::Object:
      return a.object_ == b.object_;
  }
  return false;
}

namespace {

/// Recursive-descent parser for exactly the JSON we emit (no comments, no
/// NaN/Infinity, UTF-8 passed through untouched).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    CSD_CHECK_MSG(pos_ == text_.size(),
                  "trailing characters after JSON document at offset "
                      << pos_);
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    CSD_CHECK_MSG(false, "JSON parse error at offset " << pos_ << ": "
                                                       << what);
    std::abort();  // unreachable; CSD_CHECK_MSG throws
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // We only emit \u for control characters; decode BMP code points
          // to UTF-8 so round-trips are lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) fail("expected a value");
    const std::size_t first = token[0] == '-' ? 1 : 0;
    if (token.size() > first + 1 && token[first] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first + 1])))
      fail("leading zero in number");
    const bool floating =
        token.find_first_of(".eE") != std::string_view::npos;
    if (!floating) {
      if (token[0] == '-') {
        std::int64_t value = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec != std::errc{} || p != token.data() + token.size())
          fail("bad integer");
        return Json(value);
      }
      std::uint64_t value = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc{} || p != token.data() + token.size())
        fail("bad integer");
      return Json(value);
    }
    double value = 0.0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || p != token.data() + token.size())
      fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace csd::obs
