// Minimal JSON document model for the observability layer.
//
// The repo emits two machine-readable artifacts — BENCH_*.json reports and
// per-round JSONL traces — that must be byte-identical across thread counts
// and platforms so CI can diff them against committed baselines. Hence this
// deliberately small JSON module instead of an external dependency:
//   * objects preserve insertion order (deterministic serialization),
//   * doubles serialize via std::to_chars shortest round-trip form (no
//     locale, no precision surprises),
//   * a strict parser covers exactly the documents we emit, so schema
//     round-trip tests and tools can read reports back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace csd::obs {

/// One JSON value. Numbers keep their C++ type (uint64/int64/double) so
/// integer metrics never round-trip through floating point.
class Json {
 public:
  enum class Kind : std::uint8_t {
    Null,
    Bool,
    Uint,
    Int,
    Double,
    String,
    Array,
    Object,
  };

  Json() : kind_(Kind::Null) {}
  Json(bool value) : kind_(Kind::Bool), bool_(value) {}
  Json(std::uint64_t value) : kind_(Kind::Uint), uint_(value) {}
  Json(std::int64_t value) : kind_(Kind::Int), int_(value) {}
  Json(double value) : kind_(Kind::Double), double_(value) {}
  Json(std::string value) : kind_(Kind::String), string_(std::move(value)) {}
  Json(const char* value) : kind_(Kind::String), string_(value) {}
  // Catch-all for other integer widths (uint32_t, int, ...).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::uint64_t> &&
             !std::is_same_v<T, std::int64_t>)
  Json(T value) {
    if constexpr (std::is_signed_v<T>) {
      kind_ = Kind::Int;
      int_ = static_cast<std::int64_t>(value);
    } else {
      kind_ = Kind::Uint;
      uint_ = static_cast<std::uint64_t>(value);
    }
  }

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_number() const noexcept {
    return kind_ == Kind::Uint || kind_ == Kind::Int || kind_ == Kind::Double;
  }

  bool as_bool() const;
  std::uint64_t as_uint() const;
  std::int64_t as_int() const;
  /// Any numeric kind, widened to double.
  double as_double() const;
  const std::string& as_string() const;

  // -- arrays ---------------------------------------------------------------
  Json& push(Json value);
  const std::vector<Json>& items() const;

  // -- objects (insertion-ordered) ------------------------------------------
  Json& set(std::string key, Json value);
  /// Member access; CHECK-fails when absent (reports have a fixed schema).
  const Json& at(std::string_view key) const;
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialize. indent < 0 = compact single line (used for JSONL); otherwise
  /// pretty-printed with `indent` spaces per level.
  void write(std::ostream& os, int indent = 2) const;
  std::string dump(int indent = 2) const;

  /// Strict parse of a full document (trailing garbage is an error).
  /// Throws CheckFailure with position information on malformed input.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write_indented(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// JSON string escaping (shared with the JSONL trace sink).
void write_json_string(std::ostream& os, std::string_view s);

/// Shortest round-trip formatting for doubles ("1.5", "0.125", "1e-09"...);
/// integral-valued doubles gain a trailing ".0" so they re-parse as Double.
std::string format_json_double(double value);

}  // namespace csd::obs
