// csd-metrics-v2: the always-on telemetry plane.
//
// Three pieces, one object (`Telemetry`):
//
//   1. A typed metric plane — monotonic counters, gauges with high-water
//      tracking, and power-of-two-bucket histograms — registered by stable
//      name. Registration takes a mutex once; the returned handles update
//      relaxed atomics, so the hot path is lock-free and safe from any
//      engine/worker thread.
//   2. A fixed-capacity lock-free flight recorder: a ring buffer of recent
//      engine events (superstep barriers, channel exchanges, ARQ
//      retransmits, CRC rejects, fault injections, checkpoint saves,
//      watchdog ticks, ...). Writers claim a slot with one fetch_add and
//      stamp it on completion; the post-mortem dump skips slots caught
//      mid-write, so a torn slot costs one event, never a lock.
//   3. A periodic sampler thread that snapshots the metric plane into an
//      append-only JSONL series (one `csd-metrics-v2` object per line).
//      The thread exists only while a series file is configured — the
//      zero-cost contract is structural, not a flag check.
//
// Determinism contract (same rule as EngineTimers, obs/metrics.hpp): the
// telemetry plane is write-only from the engines' point of view. Engines
// never read a metric back, so attaching a Telemetry cannot change a
// verdict, a trace byte, or a FaultReport at any workers x jobs. Wall-clock
// epochs live only in the series stream and the black-box dump — never in
// csd-trace-v2 or any other deterministic artifact.
//
// The black-box dump (`csd-blackbox-v1`) renders the ring plus a final
// metric snapshot as one JSON document. It is written on abnormal ends:
// FaultReport violations, supervisor StallReports, failed resume digests,
// fatal signals (the CLI owns the triggers; see tools/cli.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace csd::obs {

/// What happened. The names are the wire strings of csd-blackbox-v1
/// (to_string below); tools/postmortem_report.py mirrors the list.
enum class EventKind : std::uint8_t {
  SuperstepBarrier,   ///< sharded engine: one superstep merged at the barrier
  ChannelExchange,    ///< sharded engine: one worker's remote frames, 1 round
  Retransmit,         ///< ARQ timer fired, packet resent
  ChecksumReject,     ///< CRC mismatch, packet discarded
  FrameDropped,       ///< fault injection: transmission dropped
  FrameCorrupted,     ///< fault injection: payload bit flipped
  NodeCrash,          ///< node fell silent (scheduled crash or program fault)
  NodeRecover,        ///< crashed node rejoined under a RecoveryPolicy
  CheckpointSave,     ///< csd-ckpt-v1 snapshot captured
  WatchdogStall,      ///< stall watchdog cut the run
  Violation,          ///< clamped protocol violation
  StallReport,        ///< supervisor flagged an unhealthy repetition
  ResumeReject,       ///< snapshot failed the identity-digest check
  FatalSignal,        ///< process-level signal (CLI handler)
};

const char* to_string(EventKind kind) noexcept;

/// One flight-recorder entry. `actor` is a node, worker, or repetition
/// index (kind-dependent); `at` is model time (round / pulse / wave);
/// `value` is a kind-specific payload (bits, sequence number, signal...).
/// `epoch_ms` is the wall clock — post-mortem only, see the header comment.
struct FlightEvent {
  EventKind kind = EventKind::SuperstepBarrier;
  std::uint32_t actor = 0;
  std::uint64_t at = 0;
  std::uint64_t value = 0;
  std::uint64_t epoch_ms = 0;
};

/// Handle to one registered counter. Copyable, trivially destructible; the
/// pointed-to cell lives as long as the Telemetry. A default-constructed
/// handle is inert (updates are dropped) so callers can hold one
/// unconditionally.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const noexcept {
    if (cell_ != nullptr)
      cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class Telemetry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Handle to one registered gauge: last-set value plus a monotone
/// high-water mark (occupancy peaks survive the sampler's cadence).
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t v) const noexcept {
    if (value_ == nullptr) return;
    value_->store(v, std::memory_order_relaxed);
    std::uint64_t high = high_->load(std::memory_order_relaxed);
    while (v > high &&
           !high_->compare_exchange_weak(high, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const noexcept {
    return value_ == nullptr ? 0 : value_->load(std::memory_order_relaxed);
  }
  std::uint64_t high_water() const noexcept {
    return high_ == nullptr ? 0 : high_->load(std::memory_order_relaxed);
  }

 private:
  friend class Telemetry;
  Gauge(std::atomic<std::uint64_t>* value, std::atomic<std::uint64_t>* high)
      : value_(value), high_(high) {}
  std::atomic<std::uint64_t>* value_ = nullptr;
  std::atomic<std::uint64_t>* high_ = nullptr;
};

/// Handle to one registered power-of-two-bucket histogram: observe(v)
/// increments bucket floor(log2(v)) + 1 (bucket 0 counts v == 0), so
/// bucket i >= 1 holds values in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  Histogram() = default;
  void observe(std::uint64_t v) const noexcept {
    if (cells_ == nullptr) return;
    std::size_t bucket = 0;
    while (v != 0) {
      ++bucket;
      v >>= 1;
    }
    cells_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class Telemetry;
  explicit Histogram(std::atomic<std::uint64_t>* cells) : cells_(cells) {}
  std::atomic<std::uint64_t>* cells_ = nullptr;
};

/// The telemetry plane. Construct one per process (or per test), hand a
/// raw pointer to the engines via NetworkConfig / AsyncConfig, destroy
/// after the run. Thread-safe throughout; destruction joins the sampler.
class Telemetry {
 public:
  /// `ring_capacity` is rounded up to a power of two (minimum 64).
  explicit Telemetry(std::size_t ring_capacity = 4096);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // -- metric plane ------------------------------------------------------
  // Registration by stable name: the same name always returns a handle to
  // the same cell. Takes the registry mutex; call once per run, not per
  // round. A name registered as one type must not be re-registered as
  // another (checked).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  // -- flight recorder ---------------------------------------------------
  /// Lock-free: one fetch_add plus five relaxed stores and one release
  /// store. Safe from any thread.
  void record(EventKind kind, std::uint32_t actor, std::uint64_t at,
              std::uint64_t value = 0) noexcept;

  /// Events currently readable from the ring, oldest first. Slots caught
  /// mid-write are skipped (counted in the dump's `torn` field).
  std::vector<FlightEvent> events() const;

  /// Total events ever recorded (including those the ring has overwritten).
  std::uint64_t events_recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  // -- sampler -----------------------------------------------------------
  /// Start the periodic sampler: append one csd-metrics-v2 JSONL sample to
  /// `path` every `period_ms`. No-op if already sampling. Throws
  /// CheckFailure if the file cannot be opened.
  void start_sampler(const std::string& path, std::uint64_t period_ms);
  /// Stop the sampler thread, write one final sample, close the file.
  /// Idempotent; also run by the destructor.
  void stop_sampler();
  bool sampling() const noexcept { return sampler_.joinable(); }

  // -- snapshots / post-mortem ------------------------------------------
  /// The metric plane as insertion-ordered JSON:
  /// {"counters":{...},"gauges":{name:{"value":..,"high_water":..}},
  ///  "histograms":{name:[nonempty (bucket,count) pairs...]}}.
  /// Names are emitted in sorted order (same contract as the trace summary).
  Json metrics_json() const;

  /// The full csd-blackbox-v1 document: reason, epoch, ring contents
  /// (oldest first), and a final metric snapshot.
  Json blackbox_json(const std::string& reason) const;

  /// Write blackbox_json(reason) to `path` (pretty-printed). Best-effort:
  /// returns false instead of throwing (this runs on failure paths and in
  /// signal handlers).
  bool dump_blackbox(const std::string& path,
                     const std::string& reason) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // seq + 1 once fully written
    EventKind kind = EventKind::SuperstepBarrier;
    std::uint32_t actor = 0;
    std::uint64_t at = 0;
    std::uint64_t value = 0;
    std::uint64_t epoch_ms = 0;
  };

  void sampler_loop();
  void write_sample(std::uint64_t index);

  // Registry. Deques-by-unique_ptr keep cell addresses stable across
  // registration; entries are never removed.
  struct NamedCell {
    std::string name;
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;  // 1, 2, or kBuckets
  };
  mutable std::mutex registry_mutex_;
  std::vector<NamedCell> counters_;
  std::vector<NamedCell> gauges_;
  std::vector<NamedCell> histograms_;

  // Ring.
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};

  // Sampler.
  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool sampler_quit_ = false;
  std::uint64_t sampler_period_ms_ = 250;
  std::uint64_t sample_index_ = 0;
  std::string series_path_;
  std::thread sampler_;
};

}  // namespace csd::obs
