// Structured benchmark reports: one JSON schema for every bench binary and
// for `csd detect` / `csd sweep --json`.
//
// Schema (csd-bench-v1):
//   {
//     "schema": "csd-bench-v1",
//     "name": "<bench name>",
//     "smoke": <bool>,
//     "params": { ... },                    // global knobs (bandwidth, ...)
//     "seeds": [ ... ],                     // every seed the run consumed
//     "measurements": [                     // ordered, deterministic
//       {"name": "<section>/<row>", "values": { ... }}, ...
//     ],
//     "env": { "git_sha": "...", "wall_clock_ms": <double>, ... }
//   }
//
// Everything OUTSIDE "env" is a pure function of the workload: model-exact
// rounds/bits/verdicts, bit-identical across --jobs counts and re-runs.
// Wall-clock, the git SHA, and the jobs count live in "env", which
// tools/bench_compare.py treats separately (tolerance-gated wall clock,
// ignored SHA). Keys ending in "_ms" or "_ns" inside measurements are also
// wall-clock by convention (bench_micro) and compared with tolerance.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace csd::obs {

constexpr const char* kBenchSchema = "csd-bench-v1";

/// Builder for one BENCH_<name>.json document. Insertion order of params,
/// seeds, and measurements is preserved in the output.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  const std::string& name() const noexcept { return name_; }
  void set_smoke(bool smoke) { smoke_ = smoke; }

  BenchReport& param(const std::string& key, Json value);
  BenchReport& seed(std::uint64_t seed);

  /// One named measurement row; values are added in call order.
  class Measurement {
   public:
    Measurement& value(const std::string& key, Json v) {
      values_.set(key, std::move(v));
      return *this;
    }

   private:
    friend class BenchReport;
    explicit Measurement(std::string name)
        : name_(std::move(name)), values_(Json::object()) {}
    std::string name_;
    Json values_;
  };

  /// Start (or retrieve, by exact name) a measurement. Names must be
  /// deterministic: they are the join keys bench_compare matches on.
  /// References stay valid for the report's lifetime (deque storage).
  Measurement& measurement(const std::string& name);

  /// Extra env entries (jobs count, host info). Never compared exactly.
  BenchReport& env(const std::string& key, Json value);
  void set_wall_clock_ms(double ms) { wall_clock_ms_ = ms; }

  /// Full document, deterministic member order. Wall clock and git SHA are
  /// confined to the "env" object.
  Json to_json() const;
  std::string to_json_text() const;

  /// Write BENCH_<name>.json into `dir` (created if missing); returns the
  /// path written.
  std::string write_into(const std::string& dir) const;
  void write(const std::string& path) const;

  /// Compile-time git SHA (CSD_GIT_SHA; "unknown" outside a git checkout).
  static const char* git_sha();

 private:
  std::string name_;
  bool smoke_ = false;
  Json params_ = Json::object();
  std::vector<std::uint64_t> seeds_;
  std::deque<Measurement> measurements_;
  Json env_ = Json::object();
  double wall_clock_ms_ = -1.0;  // < 0 = not recorded
};

/// Wall-clock stopwatch for BenchReport::set_wall_clock_ms.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(dt).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace csd::obs
