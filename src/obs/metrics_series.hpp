// Reader side of the csd-metrics-v2 JSONL series (obs/metrics_v2.hpp):
// a strict parser plus the rate/percentile queries the post-mortem tooling
// needs. Consumed by `csd postmortem` (tools/cli.cpp); the Python twin is
// tools/postmortem_report.py — the two must render agreeing numbers, which
// CI checks on induced-failure runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace csd::obs {

/// One sampler tick: the metric plane as it looked at `epoch_ms`.
struct MetricsSample {
  std::uint64_t sample = 0;
  std::uint64_t epoch_ms = 0;
  std::uint64_t events_recorded = 0;
  /// Sorted-name order as emitted.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// name -> (value, high_water).
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      gauges;
  /// name -> sparse (bucket, count) pairs; bucket i >= 1 covers
  /// [2^(i-1), 2^i), bucket 0 counts zeros.
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::uint64_t, std::uint64_t>>>>
      histograms;

  std::uint64_t counter(const std::string& name) const;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> gauge(
      const std::string& name) const;
};

/// A parsed series, in file order (sample indices ascending).
struct MetricsSeries {
  std::vector<MetricsSample> samples;

  bool empty() const noexcept { return samples.empty(); }
  const MetricsSample& front() const { return samples.front(); }
  const MetricsSample& back() const { return samples.back(); }

  /// Wall-clock span covered by the series, in milliseconds.
  std::uint64_t span_ms() const;

  /// Average growth rate of `name` between the first and last sample, per
  /// second. nullopt when fewer than two samples or zero elapsed time.
  std::optional<double> rate_per_sec(const std::string& name) const;

  /// Counter delta between the first and last sample (counters are
  /// monotone, so this is total growth over the series).
  std::uint64_t delta(const std::string& name) const;

  /// Samples taken within the trailing `seconds` of the series (by
  /// epoch_ms relative to the last sample). Always keeps the last sample.
  std::vector<const MetricsSample*> tail(double seconds) const;
};

/// Upper edge of the bucket holding the p-th percentile (p in [0, 100]) of
/// a pow2-bucket histogram; nullopt for an empty histogram. Bucket i >= 1
/// reports 2^i (its exclusive upper bound), bucket 0 reports 0.
std::optional<std::uint64_t> histogram_percentile(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& buckets,
    double p);

/// Strict parse of a csd-metrics-v2 JSONL stream. Throws CheckFailure on
/// malformed lines or a wrong schema tag; an empty stream parses to an
/// empty series.
MetricsSeries parse_metrics_series(std::istream& is);

}  // namespace csd::obs
