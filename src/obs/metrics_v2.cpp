#include "obs/metrics_v2.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "support/check.hpp"

namespace csd::obs {

namespace {

std::uint64_t wall_epoch_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::SuperstepBarrier: return "superstep_barrier";
    case EventKind::ChannelExchange: return "channel_exchange";
    case EventKind::Retransmit: return "retransmit";
    case EventKind::ChecksumReject: return "checksum_reject";
    case EventKind::FrameDropped: return "frame_dropped";
    case EventKind::FrameCorrupted: return "frame_corrupted";
    case EventKind::NodeCrash: return "node_crash";
    case EventKind::NodeRecover: return "node_recover";
    case EventKind::CheckpointSave: return "checkpoint_save";
    case EventKind::WatchdogStall: return "watchdog_stall";
    case EventKind::Violation: return "violation";
    case EventKind::StallReport: return "stall_report";
    case EventKind::ResumeReject: return "resume_reject";
    case EventKind::FatalSignal: return "fatal_signal";
  }
  return "unknown";
}

Telemetry::Telemetry(std::size_t ring_capacity) {
  std::size_t cap = 64;
  while (cap < ring_capacity) cap <<= 1;
  slots_ = std::vector<Slot>(cap);
  mask_ = cap - 1;
}

Telemetry::~Telemetry() { stop_sampler(); }

Counter Telemetry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (NamedCell& cell : counters_)
    if (cell.name == name) return Counter(&cell.cells[0]);
  counters_.push_back(
      {name, std::make_unique<std::atomic<std::uint64_t>[]>(1)});
  counters_.back().cells[0].store(0, std::memory_order_relaxed);
  return Counter(&counters_.back().cells[0]);
}

Gauge Telemetry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (NamedCell& cell : gauges_)
    if (cell.name == name) return Gauge(&cell.cells[0], &cell.cells[1]);
  gauges_.push_back(
      {name, std::make_unique<std::atomic<std::uint64_t>[]>(2)});
  gauges_.back().cells[0].store(0, std::memory_order_relaxed);
  gauges_.back().cells[1].store(0, std::memory_order_relaxed);
  return Gauge(&gauges_.back().cells[0], &gauges_.back().cells[1]);
}

Histogram Telemetry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (NamedCell& cell : histograms_)
    if (cell.name == name) return Histogram(cell.cells.get());
  histograms_.push_back(
      {name,
       std::make_unique<std::atomic<std::uint64_t>[]>(Histogram::kBuckets)});
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
    histograms_.back().cells[i].store(0, std::memory_order_relaxed);
  return Histogram(histograms_.back().cells.get());
}

void Telemetry::record(EventKind kind, std::uint32_t actor, std::uint64_t at,
                       std::uint64_t value) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Invalidate first so a concurrent reader of the previous occupant
  // notices the rewrite in progress, then stamp on completion.
  slot.stamp.store(0, std::memory_order_relaxed);
  slot.kind = kind;
  slot.actor = actor;
  slot.at = at;
  slot.value = value;
  slot.epoch_ms = wall_epoch_ms();
  slot.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> Telemetry::events() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t seq = first; seq < head; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1)
      continue;  // torn or already overwritten by a racing writer
    FlightEvent event;
    event.kind = slot.kind;
    event.actor = slot.actor;
    event.at = slot.at;
    event.value = slot.value;
    event.epoch_ms = slot.epoch_ms;
    // Re-check the stamp: if a writer lapped us mid-copy the fields above
    // may be torn — drop the event instead of reporting garbage.
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(event);
  }
  return out;
}

Json Telemetry::metrics_json() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto sorted_names = [](const std::vector<NamedCell>& cells) {
    std::vector<const NamedCell*> sorted;
    sorted.reserve(cells.size());
    for (const NamedCell& cell : cells) sorted.push_back(&cell);
    std::sort(sorted.begin(), sorted.end(),
              [](const NamedCell* a, const NamedCell* b) {
                return a->name < b->name;
              });
    return sorted;
  };

  Json doc = Json::object();
  Json counters = Json::object();
  for (const NamedCell* cell : sorted_names(counters_))
    counters.set(cell->name,
                 Json(cell->cells[0].load(std::memory_order_relaxed)));
  doc.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const NamedCell* cell : sorted_names(gauges_)) {
    Json g = Json::object();
    g.set("value", Json(cell->cells[0].load(std::memory_order_relaxed)));
    g.set("high_water",
          Json(cell->cells[1].load(std::memory_order_relaxed)));
    gauges.set(cell->name, std::move(g));
  }
  doc.set("gauges", std::move(gauges));

  Json histograms = Json::object();
  for (const NamedCell* cell : sorted_names(histograms_)) {
    // Sparse encoding: [bucket, count] pairs for non-empty buckets only.
    Json buckets = Json::array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t count =
          cell->cells[i].load(std::memory_order_relaxed);
      if (count == 0) continue;
      Json pair = Json::array();
      pair.push(Json(static_cast<std::uint64_t>(i)));
      pair.push(Json(count));
      buckets.push(std::move(pair));
    }
    histograms.set(cell->name, std::move(buckets));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

Json Telemetry::blackbox_json(const std::string& reason) const {
  const std::vector<FlightEvent> ring = events();
  Json doc = Json::object();
  doc.set("schema", Json("csd-blackbox-v1"));
  doc.set("reason", Json(reason));
  doc.set("epoch_ms", Json(wall_epoch_ms()));
  const std::uint64_t recorded = events_recorded();
  doc.set("events_recorded", Json(recorded));
  doc.set("events_kept", Json(static_cast<std::uint64_t>(ring.size())));
  const std::uint64_t window =
      std::min<std::uint64_t>(recorded, slots_.size());
  doc.set("torn", Json(window - ring.size()));
  Json events = Json::array();
  for (const FlightEvent& event : ring) {
    Json e = Json::object();
    e.set("kind", Json(to_string(event.kind)));
    e.set("actor", Json(event.actor));
    e.set("at", Json(event.at));
    e.set("value", Json(event.value));
    e.set("epoch_ms", Json(event.epoch_ms));
    events.push(std::move(e));
  }
  doc.set("events", std::move(events));
  doc.set("metrics", metrics_json());
  return doc;
}

bool Telemetry::dump_blackbox(const std::string& path,
                              const std::string& reason) const {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << blackbox_json(reason).dump(2) << '\n';
  return os.good();
}

void Telemetry::start_sampler(const std::string& path,
                              std::uint64_t period_ms) {
  std::lock_guard<std::mutex> lock(sampler_mutex_);
  if (sampler_.joinable()) return;
  std::ofstream probe(path, std::ios::trunc);
  CSD_CHECK_MSG(probe.good(),
                "cannot write metric series file '" << path << "'");
  probe.close();
  series_path_ = path;
  sampler_period_ms_ = period_ms == 0 ? 250 : period_ms;
  sampler_quit_ = false;
  sample_index_ = 0;
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Telemetry::stop_sampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (!sampler_.joinable()) return;
    sampler_quit_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  // One final sample so even sub-period runs leave a non-empty series.
  write_sample(sample_index_++);
}

void Telemetry::sampler_loop() {
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  while (!sampler_quit_) {
    if (sampler_cv_.wait_for(lock,
                             std::chrono::milliseconds(sampler_period_ms_),
                             [this] { return sampler_quit_; }))
      break;
    const std::uint64_t index = sample_index_++;
    lock.unlock();
    write_sample(index);
    lock.lock();
  }
}

void Telemetry::write_sample(std::uint64_t index) {
  Json sample = Json::object();
  sample.set("schema", Json("csd-metrics-v2"));
  sample.set("sample", Json(index));
  sample.set("epoch_ms", Json(wall_epoch_ms()));
  sample.set("events_recorded", Json(events_recorded()));
  const Json metrics = metrics_json();
  sample.set("counters", metrics.at("counters"));
  sample.set("gauges", metrics.at("gauges"));
  sample.set("histograms", metrics.at("histograms"));
  std::ofstream os(series_path_, std::ios::app);
  if (!os.good()) return;  // best-effort: sampling must never kill a run
  os << sample.dump(-1) << '\n';
}

}  // namespace csd::obs
