#include "obs/bench_report.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

#include "support/check.hpp"

namespace csd::obs {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  CSD_CHECK_MSG(!name_.empty(), "bench report needs a name");
}

BenchReport& BenchReport::param(const std::string& key, Json value) {
  params_.set(key, std::move(value));
  return *this;
}

BenchReport& BenchReport::seed(std::uint64_t seed) {
  seeds_.push_back(seed);
  return *this;
}

BenchReport::Measurement& BenchReport::measurement(const std::string& name) {
  for (Measurement& m : measurements_)
    if (m.name_ == name) return m;
  measurements_.push_back(Measurement(name));
  return measurements_.back();
}

BenchReport& BenchReport::env(const std::string& key, Json value) {
  env_.set(key, std::move(value));
  return *this;
}

Json BenchReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kBenchSchema);
  doc.set("name", name_);
  doc.set("smoke", smoke_);
  doc.set("params", params_);
  Json seeds = Json::array();
  for (const std::uint64_t s : seeds_) seeds.push(s);
  doc.set("seeds", std::move(seeds));
  Json measurements = Json::array();
  for (const Measurement& m : measurements_) {
    Json entry = Json::object();
    entry.set("name", m.name_);
    entry.set("values", m.values_);
    measurements.push(std::move(entry));
  }
  doc.set("measurements", std::move(measurements));
  Json env = env_;
  env.set("git_sha", git_sha());
  if (wall_clock_ms_ >= 0.0) env.set("wall_clock_ms", wall_clock_ms_);
  doc.set("env", std::move(env));
  return doc;
}

std::string BenchReport::to_json_text() const { return to_json().dump(2); }

std::string BenchReport::write_into(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / ("BENCH_" + name_ + ".json")).string();
  write(path);
  return path;
}

void BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  CSD_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_json_text() << '\n';
  CSD_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

const char* BenchReport::git_sha() {
#ifdef CSD_GIT_SHA
  return CSD_GIT_SHA;
#else
  return "unknown";
#endif
}

}  // namespace csd::obs
